#include "core/query.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/kernels.h"

namespace affinity::core {

namespace {

/// Number of pairs (u', v') with u' < u, in the lexicographic (u, v) order
/// used by every sweep: f(u) = u·(2n − u − 1)/2.
std::size_t PairsBeforeRow(std::size_t u, std::size_t n) {
  return u * (2 * n - u - 1) / 2;
}

/// The idx-th sequence pair in lexicographic order over n series — O(1)
/// (plus a fix-up loop for floating-point slack), so parallel chunks can
/// seek into the middle of the O(n²) sweep.
ts::SequencePair PairFromIndex(std::size_t idx, std::size_t n) {
  const double nd = static_cast<double>(n);
  const double disc = (2.0 * nd - 1.0) * (2.0 * nd - 1.0) - 8.0 * static_cast<double>(idx);
  double guess = (2.0 * nd - 1.0 - std::sqrt(disc > 0.0 ? disc : 0.0)) / 2.0;
  if (guess < 0.0) guess = 0.0;
  std::size_t u = static_cast<std::size_t>(guess);
  if (u > n - 2) u = n - 2;
  while (u > 0 && PairsBeforeRow(u, n) > idx) --u;
  while (PairsBeforeRow(u + 1, n) <= idx) ++u;
  const std::size_t v = u + 1 + (idx - PairsBeforeRow(u, n));
  return ts::SequencePair(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v));
}

/// Advances (u, v) to the next pair in lexicographic order.
void NextPair(std::size_t n, std::size_t* u, std::size_t* v) {
  if (++*v >= n) {
    ++*u;
    *v = *u + 1;
  }
}

}  // namespace

StatusOr<std::vector<double>> EvaluateCrossPairs(Measure measure,
                                                 const std::vector<CrossPair>& pairs,
                                                 std::size_t m, const ExecContext& exec,
                                                 std::vector<PairMoments>* moments,
                                                 CrossSweepStats* stats, std::size_t anchor) {
  if (IsLocation(measure)) {
    return Status::InvalidArgument("cross-shard evaluation covers pair measures only");
  }
  // Hoist the marginals of every *distinct* column once (a column from one
  // shard pairs with every column of every other shard, so the dedup is
  // what turns the sweep from O(pairs·m·passes) into O(columns·m +
  // pairs·m) with exactly one fused pass per pair).
  std::unordered_map<const double*, std::size_t> column_index;
  std::vector<const double*> columns;
  column_index.reserve(2 * pairs.size());
  for (const CrossPair& pair : pairs) {
    if (pair.u == nullptr || pair.v == nullptr) {
      return Status::InvalidArgument("cross-shard pair with unresolved columns");
    }
    for (const double* col : {pair.u, pair.v}) {
      if (column_index.try_emplace(col, columns.size()).second) columns.push_back(col);
    }
  }
  const std::vector<kernels::Marginals> marginals =
      kernels::HoistMarginals(columns, m, exec, anchor);
  if (stats != nullptr) {
    stats->pairs_scanned += pairs.size();
    stats->columns_hoisted += columns.size();
  }
  std::vector<double> values(pairs.size());
  if (moments != nullptr) moments->resize(pairs.size());
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec, pairs.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
        for (std::size_t i = lo; i < hi; ++i) {
          if (i + 1 < hi) {
            // The next pair's columns are a strided jump away; touch
            // their heads while this pair's dot pass runs.
            __builtin_prefetch(pairs[i + 1].u);
            __builtin_prefetch(pairs[i + 1].v);
          }
          const kernels::Marginals& mu = marginals[column_index.at(pairs[i].u)];
          const kernels::Marginals& mv = marginals[column_index.at(pairs[i].v)];
          const PairMoments pm = PairMomentsFromMarginals(
              mu, mv, kernels::BlockedDot(pairs[i].u, pairs[i].v, m, anchor), m);
          auto value = PairMeasureFromMoments(measure, pm);
          if (!value.ok()) return value.status();
          values[i] = *value;
          if (moments != nullptr) (*moments)[i] = pm;
        }
        return Status::OK();
      }));
  return values;
}

QueryEngine::QueryEngine(const ts::DataMatrix* data) : data_(data) {
  AFFINITY_CHECK(data != nullptr);
}

QueryPlanner::Capabilities QueryEngine::Capabilities() const {
  QueryPlanner::Capabilities caps;
  caps.has_model = model_ != nullptr;
  caps.has_scape = scape_ != nullptr;
  caps.has_dft = wf_coefficients_ > 0;
  caps.has_quality = quality_ != nullptr;
  return caps;
}

ExecutedPlan QueryEngine::ResolvePlan(
    QueryMethod method, const std::function<PlanChoice(const QueryPlanner&)>& plan) const {
  if (method != QueryMethod::kAuto) {
    ExecutedPlan explicit_plan;
    explicit_plan.method = method;
    explicit_plan.rationale = "explicitly requested " + std::string(QueryMethodName(method));
    return explicit_plan;
  }
  return plan(QueryPlanner(data_->n(), data_->m(), Capabilities()));
}

Status QueryEngine::CheckQualityPredicate(double min_quality) const {
  if (min_quality <= 0.0) return Status::OK();
  if (quality_ == nullptr) {
    return Status::FailedPrecondition(
        "min_quality requires an attached per-series quality surface");
  }
  if (quality_->size() != data_->n()) {
    return Status::FailedPrecondition("quality surface covers " +
                                      std::to_string(quality_->size()) + " series but n=" +
                                      std::to_string(data_->n()));
  }
  return Status::OK();
}

double QueryEngine::QualityScore(ts::SeriesId v) const {
  return quality_ == nullptr || v >= quality_->size() ? 1.0 : (*quality_)[v];
}

Status QueryEngine::CheckIds(const std::vector<ts::SeriesId>& ids) const {
  if (ids.empty()) return Status::InvalidArgument("MEC requires a non-empty id set");
  for (const ts::SeriesId id : ids) {
    if (id >= data_->n()) {
      return Status::OutOfRange("series id " + std::to_string(id) + " out of range (n=" +
                                std::to_string(data_->n()) + ")");
    }
  }
  return Status::OK();
}

StatusOr<double> QueryEngine::SeriesValue(Measure measure, ts::SeriesId v,
                                          QueryMethod method) const {
  switch (method) {
    case QueryMethod::kNaive:
      return NaiveLocationMeasure(measure, data_->ColumnData(v), data_->m());
    case QueryMethod::kAffine:
      if (model_ == nullptr) return Status::FailedPrecondition("WA strategy not attached");
      return model_->SeriesMeasure(measure, v);
    default:
      return Status::InvalidArgument("L-measures support WN and WA only");
  }
}

StatusOr<double> QueryEngine::Value(Measure measure, ts::SeriesId u, ts::SeriesId v,
                                    QueryMethod method) const {
  switch (method) {
    case QueryMethod::kNaive:
      return NaivePairMeasure(measure, data_->ColumnData(u), data_->ColumnData(v), data_->m(),
                              data_->anchor_row());
    case QueryMethod::kAffine: {
      if (model_ == nullptr) return Status::FailedPrecondition("WA strategy not attached");
      if (u == v) {
        // Diagonal entries come from the exact per-series statistics.
        const SeriesStats& st = model_->series_stats(u);
        switch (measure) {
          case Measure::kCovariance:
            return st.variance;
          case Measure::kDotProduct:
            return st.sumsq;
          case Measure::kCorrelation:
            return st.variance > 0.0 ? 1.0 : 0.0;
          case Measure::kCosine:
          case Measure::kJaccard:
            return st.sumsq > 0.0 ? 1.0 : 0.0;
          case Measure::kDice:
            return st.sumsq > 0.0 ? 1.0 : 0.0;
          default:
            return Status::InvalidArgument("not a pair measure");
        }
      }
      return model_->PairMeasure(measure, ts::SequencePair(u, v));
    }
    case QueryMethod::kDft:
      return Status::Internal("WF values are computed batch-wise (see Mec/Met/Mer)");
    case QueryMethod::kScape:
      return Status::InvalidArgument("SCAPE answers MET/MER queries, not MEC");
    case QueryMethod::kAuto:
      return Status::Internal("kAuto must be resolved before per-value dispatch");
  }
  return Status::Internal("unreachable");
}

StatusOr<MecResponse> QueryEngine::Mec(const MecRequest& request, QueryMethod method) const {
  AFFINITY_RETURN_IF_ERROR(CheckIds(request.ids));
  AFFINITY_RETURN_IF_ERROR(CheckQualityPredicate(request.min_quality));
  AnswerQuality answer_quality;
  if (quality_ != nullptr) {
    // MEC's response shape is id-aligned, so the predicate cannot silently
    // exclude: every requested id must satisfy it (DESIGN.md §12).
    answer_quality.populated = true;
    for (const ts::SeriesId id : request.ids) {
      const double s = QualityScore(id);
      answer_quality.min_score = std::min(answer_quality.min_score, s);
      if (request.min_quality > 0.0 && s < request.min_quality) {
        return Status::FailedPrecondition(
            "series " + std::to_string(id) + " has quality " + std::to_string(s) +
            " below the requested min_quality " + std::to_string(request.min_quality));
      }
    }
  }
  ExecutedPlan plan = ResolvePlan(method, [&](const QueryPlanner& planner) {
    return planner.PlanMec(request.measure, request.ids.size());
  });
  method = plan.method;

  MecResponse out;
  out.plan = std::move(plan);
  out.quality = answer_quality;
  const std::size_t count = request.ids.size();
  if (IsLocation(request.measure)) {
    out.location = la::Vector(count);
    AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
        exec_, count, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
          for (std::size_t i = lo; i < hi; ++i) {
            auto value = SeriesValue(request.measure, request.ids[i], method);
            if (!value.ok()) return value.status();
            out.location[i] = *value;
          }
          return Status::OK();
        }));
    return out;
  }
  if (method == QueryMethod::kDft) {
    // WF computes its sketches from scratch per query (paper §6 cost model)
    // over just the requested series.
    if (wf_coefficients_ == 0) return Status::FailedPrecondition("WF strategy not enabled");
    if (request.measure != Measure::kCorrelation) {
      return Status::InvalidArgument("the WF method only supports the correlation coefficient");
    }
    la::Matrix subset(data_->m(), count);
    for (std::size_t i = 0; i < count; ++i) subset.SetCol(i, data_->Column(request.ids[i]));
    AFFINITY_ASSIGN_OR_RETURN(
        dft::DftCorrelationEstimator wf,
        dft::DftCorrelationEstimator::Build(ts::DataMatrix(std::move(subset)), wf_coefficients_,
                                            exec_));
    out.pair_values = wf.EstimateAll();
    return out;
  }
  out.pair_values = la::Matrix(count, count);
  // WN: hoist each requested column's marginals once — O(count·m) — then
  // exactly one fused blocked dot per cell; the diagonal reuses the
  // hoisted Σx² chain (bit-equal to BlockedDot(x, x)) with no extra scan.
  std::vector<kernels::Marginals> marginals;
  std::vector<const double*> cols;
  if (method == QueryMethod::kNaive) {
    cols.resize(count);
    for (std::size_t i = 0; i < count; ++i) cols[i] = data_->ColumnData(request.ids[i]);
    marginals = kernels::HoistMarginals(cols, data_->m(), exec_, data_->anchor_row());
  }
  // Row i fills cells (i, j) and (j, i) for j ≥ i — rows write disjoint
  // cell sets, so the chunked fill needs no synchronization.
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec_, count, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t j = i; j < count; ++j) {
            StatusOr<double> value = [&]() -> StatusOr<double> {
              if (method != QueryMethod::kNaive) {
                return Value(request.measure, request.ids[i], request.ids[j], method);
              }
              const double dot = i == j ? marginals[i].sumsq
                                        : kernels::BlockedDot(cols[i], cols[j], data_->m(),
                                                              data_->anchor_row());
              return PairMeasureFromMoments(
                  request.measure,
                  PairMomentsFromMarginals(marginals[i], marginals[j], dot, data_->m()));
            }();
            if (!value.ok()) return value.status();
            out.pair_values(i, j) = *value;
            out.pair_values(j, i) = *value;
          }
        }
        return Status::OK();
      }));
  return out;
}

StatusOr<SelectionResult> QueryEngine::SelectByPredicateDft(Measure measure,
                                                            bool (*keep)(double, double, double),
                                                            double a, double b) const {
  if (wf_coefficients_ == 0) return Status::FailedPrecondition("WF strategy not enabled");
  if (measure != Measure::kCorrelation) {
    return Status::InvalidArgument("the WF method only supports the correlation coefficient");
  }
  // Per-query sketch construction, then the O(c)-per-pair estimate.
  AFFINITY_ASSIGN_OR_RETURN(dft::DftCorrelationEstimator wf,
                            dft::DftCorrelationEstimator::Build(*data_, wf_coefficients_, exec_));
  SelectionResult out;
  const std::size_t n = data_->n();
  if (n < 2) return out;
  const std::size_t total = ts::SequencePairCount(n);
  std::vector<std::vector<ts::SequencePair>> parts(ExecNumChunks(total));
  ParallelChunks(exec_, total, [&](std::size_t c, std::size_t lo, std::size_t hi) {
    ts::SequencePair p = PairFromIndex(lo, n);
    std::size_t u = p.u, v = p.v;
    for (std::size_t i = lo; i < hi; ++i) {
      if (keep(wf.Estimate(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v)), a, b)) {
        parts[c].emplace_back(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v));
      }
      NextPair(n, &u, &v);
    }
  });
  for (std::vector<ts::SequencePair>& part : parts) {
    out.pairs.insert(out.pairs.end(), part.begin(), part.end());
  }
  return out;
}

StatusOr<SelectionResult> QueryEngine::SelectByPredicate(Measure measure, QueryMethod method,
                                                         bool (*keep)(double, double, double),
                                                         double a, double b) const {
  SelectionResult out;
  const std::size_t n = data_->n();
  if (IsLocation(measure)) {
    std::vector<std::vector<ts::SeriesId>> parts(ExecNumChunks(n));
    AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
        exec_, n, [&](std::size_t c, std::size_t lo, std::size_t hi) -> Status {
          for (std::size_t v = lo; v < hi; ++v) {
            auto value = SeriesValue(measure, static_cast<ts::SeriesId>(v), method);
            if (!value.ok()) return value.status();
            if (keep(*value, a, b)) parts[c].push_back(static_cast<ts::SeriesId>(v));
          }
          return Status::OK();
        }));
    for (std::vector<ts::SeriesId>& part : parts) {
      out.series.insert(out.series.end(), part.begin(), part.end());
    }
    return out;
  }
  if (n < 2) return out;
  // WN sweeps hoist every column's marginals once per query (O(n·m)),
  // then pay exactly one fused blocked dot per pair — the marginal
  // hoisting of DESIGN.md §10. Each pair's value is computed whole by one
  // chunk, so results stay bitwise identical at any thread count.
  std::vector<kernels::Marginals> marginals;
  if (method == QueryMethod::kNaive) marginals = kernels::HoistMarginals(*data_, exec_);
  const auto pair_value = [&](std::size_t u, std::size_t v) -> StatusOr<double> {
    if (method != QueryMethod::kNaive) {
      return Value(measure, static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v), method);
    }
    const double dot = kernels::BlockedDot(data_->ColumnData(static_cast<ts::SeriesId>(u)),
                                           data_->ColumnData(static_cast<ts::SeriesId>(v)),
                                           data_->m(), data_->anchor_row());
    return PairMeasureFromMoments(
        measure, PairMomentsFromMarginals(marginals[u], marginals[v], dot, data_->m()));
  };
  const std::size_t total = ts::SequencePairCount(n);
  std::vector<std::vector<ts::SequencePair>> parts(ExecNumChunks(total));
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec_, total, [&](std::size_t c, std::size_t lo, std::size_t hi) -> Status {
        ts::SequencePair p = PairFromIndex(lo, n);
        std::size_t u = p.u, v = p.v;
        for (std::size_t i = lo; i < hi; ++i) {
          auto value = pair_value(u, v);
          if (!value.ok()) return value.status();
          if (keep(*value, a, b)) {
            parts[c].emplace_back(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v));
          }
          NextPair(n, &u, &v);
        }
        return Status::OK();
      }));
  for (std::vector<ts::SequencePair>& part : parts) {
    out.pairs.insert(out.pairs.end(), part.begin(), part.end());
  }
  return out;
}

namespace {

/// Post-filters a MET/MER selection by the quality predicate and stamps
/// its AnswerQuality (DESIGN.md §12). The measure predicate and the
/// quality predicate are conjunctive, so filtering *after* any strategy —
/// SCAPE included — is exact. `score(v)` must return the composite score
/// of series v.
template <class ScoreFn>
void FilterAndStampSelection(double min_quality, const ScoreFn& score, SelectionResult* out) {
  AnswerQuality q;
  q.populated = true;
  std::size_t kept_series = 0;
  for (const ts::SeriesId v : out->series) {
    const double s = score(v);
    if (min_quality > 0.0 && s < min_quality) continue;
    out->series[kept_series++] = v;
    q.min_score = std::min(q.min_score, s);
  }
  q.excluded += out->series.size() - kept_series;
  out->series.resize(kept_series);
  std::size_t kept_pairs = 0;
  for (const ts::SequencePair& p : out->pairs) {
    const double su = score(p.u);
    const double sv = score(p.v);
    if (min_quality > 0.0 && (su < min_quality || sv < min_quality)) continue;
    out->pairs[kept_pairs++] = p;
    q.min_score = std::min(q.min_score, std::min(su, sv));
  }
  q.excluded += out->pairs.size() - kept_pairs;
  out->pairs.resize(kept_pairs);
  out->quality = q;
  if (min_quality > 0.0) AnnotateQualityFiltered(&out->plan, min_quality, q.excluded);
}

}  // namespace

StatusOr<SelectionResult> QueryEngine::Met(const MetRequest& request, QueryMethod method) const {
  AFFINITY_RETURN_IF_ERROR(CheckQualityPredicate(request.min_quality));
  ExecutedPlan plan = ResolvePlan(
      method, [&](const QueryPlanner& planner) { return planner.PlanMet(request.measure); });
  method = plan.method;
  StatusOr<SelectionResult> result = [&]() -> StatusOr<SelectionResult> {
    if (method == QueryMethod::kDft) {
      return SelectByPredicateDft(request.measure, request.greater ? KeepGreater : KeepLesser,
                                  request.tau, 0.0);
    }
    if (method == QueryMethod::kScape) {
      if (scape_ == nullptr) return Status::FailedPrecondition("SCAPE index not attached");
      AFFINITY_ASSIGN_OR_RETURN(
          ScapeQueryResult r,
          scape_->MeasureThreshold(request.measure, request.tau, request.greater));
      SelectionResult out;
      out.series = std::move(r.series);
      out.pairs = std::move(r.pairs);
      out.prune = r.prune;
      return out;
    }
    return SelectByPredicate(request.measure, method, request.greater ? KeepGreater : KeepLesser,
                             request.tau, 0.0);
  }();
  if (!result.ok()) return result.status();
  result->plan = std::move(plan);
  if (quality_ != nullptr) {
    FilterAndStampSelection(request.min_quality, [&](ts::SeriesId v) { return QualityScore(v); },
                            &*result);
  }
  return result;
}

StatusOr<SelectionResult> QueryEngine::Mer(const MerRequest& request, QueryMethod method) const {
  if (request.lo > request.hi) return Status::InvalidArgument("MER requires lo <= hi");
  AFFINITY_RETURN_IF_ERROR(CheckQualityPredicate(request.min_quality));
  ExecutedPlan plan = ResolvePlan(
      method, [&](const QueryPlanner& planner) { return planner.PlanMer(request.measure); });
  method = plan.method;
  StatusOr<SelectionResult> result = [&]() -> StatusOr<SelectionResult> {
    if (method == QueryMethod::kDft) {
      return SelectByPredicateDft(request.measure, KeepInside, request.lo, request.hi);
    }
    if (method == QueryMethod::kScape) {
      if (scape_ == nullptr) return Status::FailedPrecondition("SCAPE index not attached");
      AFFINITY_ASSIGN_OR_RETURN(ScapeQueryResult r,
                                scape_->MeasureRange(request.measure, request.lo, request.hi));
      SelectionResult out;
      out.series = std::move(r.series);
      out.pairs = std::move(r.pairs);
      out.prune = r.prune;
      return out;
    }
    return SelectByPredicate(request.measure, method, KeepInside, request.lo, request.hi);
  }();
  if (!result.ok()) return result.status();
  result->plan = std::move(plan);
  if (quality_ != nullptr) {
    FilterAndStampSelection(request.min_quality, [&](ts::SeriesId v) { return QualityScore(v); },
                            &*result);
  }
  return result;
}

StatusOr<TopKResult> QueryEngine::TopK(const TopKRequest& request, QueryMethod method) const {
  AFFINITY_RETURN_IF_ERROR(CheckQualityPredicate(request.min_quality));
  ExecutedPlan plan = ResolvePlan(method, [&](const QueryPlanner& planner) {
    return planner.PlanTopK(request.measure, request.k);
  });
  method = plan.method;
  const bool quality_filter = request.min_quality > 0.0;
  if (quality_filter && method == QueryMethod::kScape) {
    // The index's threshold algorithm pops a fixed k entries with no
    // notion of eligibility; restricting the competition to eligible
    // series needs the sweep (graceful degradation, DESIGN.md §12).
    method = model_ != nullptr ? QueryMethod::kAffine : QueryMethod::kNaive;
    plan.method = method;
    plan.rationale += "; quality filter: SCAPE bypassed, " +
                      std::string(QueryMethodName(method)) + " sweep over eligible entities";
  }
  // Stamps the answer with the worst score among the series it touched
  // (populated only when a quality surface is attached).
  const auto stamp = [&](TopKResult* out) {
    if (quality_ == nullptr) return;
    out->quality.populated = true;
    out->quality.min_score = 1.0;
    for (const ScapeTopKEntry& e : out->entries) {
      if (e.series != kNoSeries) {
        out->quality.min_score = std::min(out->quality.min_score, QualityScore(e.series));
      } else {
        out->quality.min_score = std::min(
            out->quality.min_score, std::min(QualityScore(e.pair.u), QualityScore(e.pair.v)));
      }
    }
  };
  if (method == QueryMethod::kScape) {
    if (scape_ == nullptr) return Status::FailedPrecondition("SCAPE index not attached");
    AFFINITY_ASSIGN_OR_RETURN(ScapeTopKResult r,
                              scape_->TopK(request.measure, request.k, request.largest));
    TopKResult out;
    static_cast<ScapeTopKResult&>(out) = std::move(r);
    out.plan = std::move(plan);
    stamp(&out);
    return out;
  }
  if (method == QueryMethod::kDft) {
    return Status::InvalidArgument("top-k supports WN, WA, and SCAPE");
  }
  // WN/WA: evaluate every entity in parallel, then partial-sort. Under the
  // quality predicate, ineligible entities get the worst-possible sentinel
  // value so they can never claim one of the k slots (k is clamped to the
  // eligible count below, so sentinels never surface in the result).
  const std::size_t n = data_->n();
  const std::size_t total =
      IsLocation(request.measure) ? n : ts::SequencePairCount(n);
  const double sentinel = request.largest ? -std::numeric_limits<double>::infinity()
                                          : std::numeric_limits<double>::infinity();
  const auto eligible = [&](std::size_t v) {
    return !quality_filter || QualityScore(static_cast<ts::SeriesId>(v)) >= request.min_quality;
  };
  std::size_t eligible_series = 0;
  for (std::size_t v = 0; v < n; ++v) eligible_series += eligible(v) ? 1 : 0;
  const std::size_t eligible_total =
      IsLocation(request.measure) ? eligible_series : ts::SequencePairCount(eligible_series);
  std::vector<ScapeTopKEntry> all(total);
  if (IsLocation(request.measure)) {
    AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
        exec_, total, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
          for (std::size_t v = lo; v < hi; ++v) {
            if (!eligible(v)) {
              all[v] = ScapeTopKEntry{ts::SequencePair{}, static_cast<ts::SeriesId>(v), sentinel};
              continue;
            }
            auto value = SeriesValue(request.measure, static_cast<ts::SeriesId>(v), method);
            if (!value.ok()) return value.status();
            all[v] = ScapeTopKEntry{ts::SequencePair{}, static_cast<ts::SeriesId>(v), *value};
          }
          return Status::OK();
        }));
  } else {
    // Marginal-hoisted WN sweep, exactly as SelectByPredicate.
    std::vector<kernels::Marginals> marginals;
    if (method == QueryMethod::kNaive) marginals = kernels::HoistMarginals(*data_, exec_);
    AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
        exec_, total, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
          ts::SequencePair p = PairFromIndex(lo, n);
          std::size_t u = p.u, v = p.v;
          for (std::size_t i = lo; i < hi; ++i) {
            if (!eligible(u) || !eligible(v)) {
              all[i] = ScapeTopKEntry{
                  ts::SequencePair(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v)),
                  kNoSeries, sentinel};
              NextPair(n, &u, &v);
              continue;
            }
            StatusOr<double> value = [&]() -> StatusOr<double> {
              if (method != QueryMethod::kNaive) {
                return Value(request.measure, static_cast<ts::SeriesId>(u),
                             static_cast<ts::SeriesId>(v), method);
              }
              const double dot =
                  kernels::BlockedDot(data_->ColumnData(static_cast<ts::SeriesId>(u)),
                                      data_->ColumnData(static_cast<ts::SeriesId>(v)),
                                      data_->m(), data_->anchor_row());
              return PairMeasureFromMoments(
                  request.measure,
                  PairMomentsFromMarginals(marginals[u], marginals[v], dot, data_->m()));
            }();
            if (!value.ok()) return value.status();
            all[i] = ScapeTopKEntry{
                ts::SequencePair(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(v)),
                kNoSeries, *value};
            NextPair(n, &u, &v);
          }
          return Status::OK();
        }));
  }
  const std::size_t cap = quality_filter ? std::min(request.k, eligible_total) : request.k;
  const std::size_t k = cap < all.size() ? cap : all.size();
  const auto better = [&](const ScapeTopKEntry& a, const ScapeTopKEntry& b) {
    return request.largest ? a.value > b.value : a.value < b.value;
  };
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(), better);
  all.resize(k);
  TopKResult out;
  out.entries = std::move(all);
  out.examined = total;
  out.plan = std::move(plan);
  if (quality_filter) {
    out.quality.excluded = total - eligible_total;
    AnnotateQualityFiltered(&out.plan, request.min_quality, out.quality.excluded);
  }
  stamp(&out);
  return out;
}

}  // namespace affinity::core
