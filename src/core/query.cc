#include "core/query.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"

namespace affinity::core {

namespace {

bool KeepGreater(double value, double tau, double /*unused*/) { return value > tau; }
bool KeepLesser(double value, double tau, double /*unused*/) { return value < tau; }
bool KeepInside(double value, double lo, double hi) { return lo < value && value < hi; }

}  // namespace

std::string_view QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kNaive:
      return "WN";
    case QueryMethod::kAffine:
      return "WA";
    case QueryMethod::kDft:
      return "WF";
    case QueryMethod::kScape:
      return "SCAPE";
  }
  return "?";
}

QueryEngine::QueryEngine(const ts::DataMatrix* data) : data_(data) {
  AFFINITY_CHECK(data != nullptr);
}

Status QueryEngine::CheckIds(const std::vector<ts::SeriesId>& ids) const {
  if (ids.empty()) return Status::InvalidArgument("MEC requires a non-empty id set");
  for (const ts::SeriesId id : ids) {
    if (id >= data_->n()) {
      return Status::OutOfRange("series id " + std::to_string(id) + " out of range (n=" +
                                std::to_string(data_->n()) + ")");
    }
  }
  return Status::OK();
}

StatusOr<double> QueryEngine::SeriesValue(Measure measure, ts::SeriesId v,
                                          QueryMethod method) const {
  switch (method) {
    case QueryMethod::kNaive:
      return NaiveLocationMeasure(measure, data_->ColumnData(v), data_->m());
    case QueryMethod::kAffine:
      if (model_ == nullptr) return Status::FailedPrecondition("WA strategy not attached");
      return model_->SeriesMeasure(measure, v);
    default:
      return Status::InvalidArgument("L-measures support WN and WA only");
  }
}

StatusOr<double> QueryEngine::Value(Measure measure, ts::SeriesId u, ts::SeriesId v,
                                    QueryMethod method) const {
  switch (method) {
    case QueryMethod::kNaive:
      return NaivePairMeasure(measure, data_->ColumnData(u), data_->ColumnData(v), data_->m());
    case QueryMethod::kAffine: {
      if (model_ == nullptr) return Status::FailedPrecondition("WA strategy not attached");
      if (u == v) {
        // Diagonal entries come from the exact per-series statistics.
        const SeriesStats& st = model_->series_stats(u);
        switch (measure) {
          case Measure::kCovariance:
            return st.variance;
          case Measure::kDotProduct:
            return st.sumsq;
          case Measure::kCorrelation:
            return st.variance > 0.0 ? 1.0 : 0.0;
          case Measure::kCosine:
          case Measure::kJaccard:
            return st.sumsq > 0.0 ? 1.0 : 0.0;
          case Measure::kDice:
            return st.sumsq > 0.0 ? 1.0 : 0.0;
          default:
            return Status::InvalidArgument("not a pair measure");
        }
      }
      return model_->PairMeasure(measure, ts::SequencePair(u, v));
    }
    case QueryMethod::kDft:
      return Status::Internal("WF values are computed batch-wise (see Mec/Met/Mer)");
    case QueryMethod::kScape:
      return Status::InvalidArgument("SCAPE answers MET/MER queries, not MEC");
  }
  return Status::Internal("unreachable");
}

StatusOr<MecResponse> QueryEngine::Mec(const MecRequest& request, QueryMethod method) const {
  AFFINITY_RETURN_IF_ERROR(CheckIds(request.ids));
  MecResponse out;
  const std::size_t count = request.ids.size();
  if (IsLocation(request.measure)) {
    out.location = la::Vector(count);
    for (std::size_t i = 0; i < count; ++i) {
      AFFINITY_ASSIGN_OR_RETURN(double v, SeriesValue(request.measure, request.ids[i], method));
      out.location[i] = v;
    }
    return out;
  }
  if (method == QueryMethod::kDft) {
    // WF computes its sketches from scratch per query (paper §6 cost model)
    // over just the requested series.
    if (wf_coefficients_ == 0) return Status::FailedPrecondition("WF strategy not enabled");
    if (request.measure != Measure::kCorrelation) {
      return Status::InvalidArgument("the WF method only supports the correlation coefficient");
    }
    la::Matrix subset(data_->m(), count);
    for (std::size_t i = 0; i < count; ++i) subset.SetCol(i, data_->Column(request.ids[i]));
    AFFINITY_ASSIGN_OR_RETURN(
        dft::DftCorrelationEstimator wf,
        dft::DftCorrelationEstimator::Build(ts::DataMatrix(std::move(subset)),
                                            wf_coefficients_));
    out.pair_values = wf.EstimateAll();
    return out;
  }
  out.pair_values = la::Matrix(count, count);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i; j < count; ++j) {
      AFFINITY_ASSIGN_OR_RETURN(
          double v, Value(request.measure, request.ids[i], request.ids[j], method));
      out.pair_values(i, j) = v;
      out.pair_values(j, i) = v;
    }
  }
  return out;
}

StatusOr<SelectionResult> QueryEngine::SelectByPredicateDft(Measure measure,
                                                            bool (*keep)(double, double, double),
                                                            double a, double b) const {
  if (wf_coefficients_ == 0) return Status::FailedPrecondition("WF strategy not enabled");
  if (measure != Measure::kCorrelation) {
    return Status::InvalidArgument("the WF method only supports the correlation coefficient");
  }
  // Per-query sketch construction, then the O(c)-per-pair estimate.
  AFFINITY_ASSIGN_OR_RETURN(dft::DftCorrelationEstimator wf,
                            dft::DftCorrelationEstimator::Build(*data_, wf_coefficients_));
  SelectionResult out;
  const std::size_t n = data_->n();
  for (ts::SeriesId u = 0; u + 1 < n; ++u) {
    for (ts::SeriesId v = u + 1; v < n; ++v) {
      if (keep(wf.Estimate(u, v), a, b)) out.pairs.emplace_back(u, v);
    }
  }
  return out;
}

StatusOr<SelectionResult> QueryEngine::SelectByPredicate(Measure measure, QueryMethod method,
                                                         bool (*keep)(double, double, double),
                                                         double a, double b) const {
  SelectionResult out;
  const std::size_t n = data_->n();
  if (IsLocation(measure)) {
    for (ts::SeriesId v = 0; v < n; ++v) {
      AFFINITY_ASSIGN_OR_RETURN(double value, SeriesValue(measure, v, method));
      if (keep(value, a, b)) out.series.push_back(v);
    }
    return out;
  }
  for (ts::SeriesId u = 0; u + 1 < n; ++u) {
    for (ts::SeriesId v = u + 1; v < n; ++v) {
      AFFINITY_ASSIGN_OR_RETURN(double value, Value(measure, u, v, method));
      if (keep(value, a, b)) out.pairs.emplace_back(u, v);
    }
  }
  return out;
}

StatusOr<SelectionResult> QueryEngine::Met(const MetRequest& request, QueryMethod method) const {
  if (method == QueryMethod::kDft) {
    return SelectByPredicateDft(request.measure, request.greater ? KeepGreater : KeepLesser,
                                request.tau, 0.0);
  }
  if (method == QueryMethod::kScape) {
    if (scape_ == nullptr) return Status::FailedPrecondition("SCAPE index not attached");
    AFFINITY_ASSIGN_OR_RETURN(
        ScapeQueryResult r, scape_->MeasureThreshold(request.measure, request.tau, request.greater));
    SelectionResult out;
    out.series = std::move(r.series);
    out.pairs = std::move(r.pairs);
    out.prune = r.prune;
    return out;
  }
  return SelectByPredicate(request.measure, method, request.greater ? KeepGreater : KeepLesser,
                           request.tau, 0.0);
}

StatusOr<SelectionResult> QueryEngine::Mer(const MerRequest& request, QueryMethod method) const {
  if (request.lo > request.hi) return Status::InvalidArgument("MER requires lo <= hi");
  if (method == QueryMethod::kDft) {
    return SelectByPredicateDft(request.measure, KeepInside, request.lo, request.hi);
  }
  if (method == QueryMethod::kScape) {
    if (scape_ == nullptr) return Status::FailedPrecondition("SCAPE index not attached");
    AFFINITY_ASSIGN_OR_RETURN(ScapeQueryResult r,
                              scape_->MeasureRange(request.measure, request.lo, request.hi));
    SelectionResult out;
    out.series = std::move(r.series);
    out.pairs = std::move(r.pairs);
    out.prune = r.prune;
    return out;
  }
  return SelectByPredicate(request.measure, method, KeepInside, request.lo, request.hi);
}

StatusOr<ScapeTopKResult> QueryEngine::TopK(const TopKRequest& request,
                                            QueryMethod method) const {
  if (method == QueryMethod::kScape) {
    if (scape_ == nullptr) return Status::FailedPrecondition("SCAPE index not attached");
    return scape_->TopK(request.measure, request.k, request.largest);
  }
  if (method == QueryMethod::kDft) {
    return Status::InvalidArgument("top-k supports WN, WA, and SCAPE");
  }
  // WN/WA: evaluate every entity, then partial-sort.
  std::vector<ScapeTopKEntry> all;
  const std::size_t n = data_->n();
  if (IsLocation(request.measure)) {
    all.reserve(n);
    for (ts::SeriesId v = 0; v < n; ++v) {
      AFFINITY_ASSIGN_OR_RETURN(double value, SeriesValue(request.measure, v, method));
      all.push_back(ScapeTopKEntry{ts::SequencePair{}, v, value});
    }
  } else {
    all.reserve(ts::SequencePairCount(n));
    for (ts::SeriesId u = 0; u + 1 < n; ++u) {
      for (ts::SeriesId v = u + 1; v < n; ++v) {
        AFFINITY_ASSIGN_OR_RETURN(double value, Value(request.measure, u, v, method));
        all.push_back(ScapeTopKEntry{ts::SequencePair(u, v), 0, value});
      }
    }
  }
  const std::size_t k = request.k < all.size() ? request.k : all.size();
  const auto better = [&](const ScapeTopKEntry& a, const ScapeTopKEntry& b) {
    return request.largest ? a.value > b.value : a.value < b.value;
  };
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(), better);
  all.resize(k);
  ScapeTopKResult out;
  out.entries = std::move(all);
  out.examined = IsLocation(request.measure) ? n : ts::SequencePairCount(n);
  return out;
}

}  // namespace affinity::core
