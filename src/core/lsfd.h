#ifndef AFFINITY_CORE_LSFD_H_
#define AFFINITY_CORE_LSFD_H_

/// \file lsfd.h
/// The Least Significant Frobenius Distance (Definition 1).
///
/// DF(X, Y)² = λ3² + λ4², where λ3, λ4 are the third and fourth singular
/// values of the column concatenation [X̂, Ŷ] of the zero-meaned pair
/// matrices. DF is zero exactly when Y's columns lie in the affine span of
/// X's columns (a perfect affine relationship exists) and is a metric
/// (Theorem 1) — the distance AFCLST clusters against.

#include "common/status.h"
#include "la/matrix.h"

namespace affinity::core {

/// DF(X, Y) for two m×2 pair matrices. O(m) plus a 4×4 eigensolve.
/// InvalidArgument unless both inputs are m×2 with equal m ≥ 2.
StatusOr<double> Lsfd(const la::Matrix& x, const la::Matrix& y);

/// DF(X, Y)² (avoids the final square root when comparing distances).
StatusOr<double> LsfdSquared(const la::Matrix& x, const la::Matrix& y);

}  // namespace affinity::core

#endif  // AFFINITY_CORE_LSFD_H_
