#ifndef AFFINITY_CORE_AFFINE_H_
#define AFFINITY_CORE_AFFINE_H_

/// \file affine.h
/// Affine transformations between pair matrices (Section 2.3) and the
/// measure-propagation rules (Eqs. 5–8).
///
/// An affine transformation maps a source pair matrix X ∈ R^{m×2} to a
/// target Y = X·A + 1·bᵀ. The paper's key observation is that L-, T- and
/// D-measures of Y are cheap functions of the measures of X and (A, b),
/// so a measure computed once on a *pivot* matrix can be propagated to
/// every related sequence pair in O(1).

#include <cstddef>

#include "common/status.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace affinity::core {

/// A 2-D affine transformation (A, b): Y = X·A + 1·bᵀ.
///
/// Stored flat (column-major A) because SYMEX materializes hundreds of
/// thousands of these. Column j of A is a_j = (a1j, a2j)ᵀ in the paper's
/// notation.
struct AffineTransform {
  double a11 = 1.0, a21 = 0.0;  ///< first column a1
  double a12 = 0.0, a22 = 1.0;  ///< second column a2
  double b1 = 0.0, b2 = 0.0;    ///< translation b

  /// A as a 2×2 la::Matrix (for tests / pretty output).
  la::Matrix AMatrix() const;
  /// b as a 2-vector.
  la::Vector BVector() const;
};

/// Pre-computed statistics of a source (pivot) pair matrix X = [x1, x2] —
/// everything the propagation rules need (the value stored in the paper's
/// pivotHash during pre-processing, §4.1).
struct PairMatrixMeasures {
  double mean[2] = {0, 0};    ///< L: column means
  double median[2] = {0, 0};  ///< L: column medians
  double mode[2] = {0, 0};    ///< L: column modes
  double cov11 = 0, cov12 = 0, cov22 = 0;  ///< Σ(X) (symmetric 2×2)
  double dot11 = 0, dot12 = 0, dot22 = 0;  ///< Π(X) = XᵀX
  double h1 = 0, h2 = 0;                   ///< column sums (Eq. 7)
  std::size_t m = 0;                       ///< number of rows
};

/// Computes all PairMatrixMeasures of the matrix [x1, x2] in O(m), with
/// the blocked sums on the canonical grid at `anchor` (core/kernels).
PairMatrixMeasures ComputePairMatrixMeasures(const double* x1, const double* x2, std::size_t m,
                                             std::size_t anchor = 0);

/// Fits (A, b) by least squares so that target ≈ source·A + 1·bᵀ
/// (the LeastSquares routine of Algorithm 2). Both matrices are m×2.
/// Fails (FailedPrecondition) when [source, 1] is column-rank-deficient.
StatusOr<AffineTransform> FitAffine(const la::Matrix& source, const la::Matrix& target);

/// Applies the transformation: returns source·A + 1·bᵀ.
la::Matrix ApplyAffine(const la::Matrix& source, const AffineTransform& t);

// ---------------------------------------------------------------------------
// Measure propagation under Y = X·A + 1·bᵀ (Eqs. 5–8).
//
// Each rule returns the measure entry between the two *target* columns
// (or per-column for L-measures) given only the source measures and (A, b).
// ---------------------------------------------------------------------------

/// Eq. (5): L(Y)ᵀ = L(X)ᵀ·A + bᵀ, column `col` (0 or 1) of the target.
/// `lx1`, `lx2` are the source columns' location measure.
double PropagateLocation(double lx1, double lx2, const AffineTransform& t, int col);

/// Eq. (6): Σ12(Y) = a1ᵀ·Σ(X)·a2.
double PropagateCovariance(const PairMatrixMeasures& x, const AffineTransform& t);

/// Variance of target column `col`: a_colᵀ·Σ(X)·a_col.
double PropagateVariance(const PairMatrixMeasures& x, const AffineTransform& t, int col);

/// Eq. (7) (corrected form, see DESIGN.md):
/// Π12(Y) = a1ᵀΠ(X)a2 + (a1ᵀh)·b2 + b1·(hᵀa2) + m·b1·b2.
double PropagateDotProduct(const PairMatrixMeasures& x, const AffineTransform& t);

/// Squared norm ‖y_col‖² of target column `col` (needed by cosine/Jaccard/
/// Dice normalizers): a_colᵀΠ(X)a_col + 2·b_col·(hᵀa_col) + m·b_col².
double PropagateSquaredNorm(const PairMatrixMeasures& x, const AffineTransform& t, int col);

}  // namespace affinity::core

#endif  // AFFINITY_CORE_AFFINE_H_
