// affinity-lint: allow-file(fp-accumulate): offline diagnostics — sequential
// per-pair reductions; never on the append or serve paths, never chunked.
#include "core/quality.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "core/affine.h"
#include "core/lsfd.h"

namespace affinity::core {

StatusOr<ModelQualityReport> EvaluateModelQuality(const AffinityModel& model,
                                                  std::size_t sample_pairs, std::uint64_t seed) {
  const ts::DataMatrix& data = model.data();
  const std::size_t n = data.n();
  const std::size_t m = data.m();
  if (n < 2) return Status::InvalidArgument("quality evaluation requires >= 2 series");

  ModelQualityReport report;
  report.relationships = model.relationship_count();
  report.pivots = model.pivot_count();

  // Cluster balance and projection errors from the clustering itself.
  const AfclstResult& clustering = model.clustering();
  report.cluster_sizes.assign(clustering.k(), 0);
  double proj_acc = 0;
  for (std::size_t v = 0; v < n; ++v) {
    ++report.cluster_sizes[static_cast<std::size_t>(clustering.assignment[v])];
    const double norm =
        std::sqrt(model.series_stats(static_cast<ts::SeriesId>(v)).sumsq) + 1e-300;
    proj_acc += clustering.projection_errors[v] / norm;
  }
  report.mean_relative_projection_error = proj_acc / static_cast<double>(n);

  // Sample sequence pairs with an existing relationship.
  Xoshiro256 rng(seed);
  std::vector<double> residuals;
  double lsfd_acc = 0;
  std::size_t lsfd_count = 0;
  const std::size_t attempts = sample_pairs * 3;
  for (std::size_t trial = 0; trial < attempts && residuals.size() < sample_pairs; ++trial) {
    const auto u = static_cast<ts::SeriesId>(rng.NextBounded(n));
    auto v = static_cast<ts::SeriesId>(rng.NextBounded(n));
    if (u == v) continue;
    const ts::SequencePair e(u, v);
    const AffineRecord* rec = model.FindRelationship(e);
    if (rec == nullptr) continue;  // truncated model

    // Materialize the pivot matrix and the fitted image.
    const double* center = clustering.centers.ColData(rec->pivot.cluster);
    const double* series = data.ColumnData(rec->pivot.series);
    const double* c1 = rec->pivot.series_first ? series : center;
    const double* c2 = rec->pivot.series_first ? center : series;
    const double* t1 = data.ColumnData(e.u);
    const double* t2 = data.ColumnData(e.v);

    const AffineTransform& tr = rec->transform;
    double resid2 = 0;
    double target_center2 = 0;
    double mean1 = 0, mean2 = 0;
    for (std::size_t i = 0; i < m; ++i) {
      mean1 += t1[i];
      mean2 += t2[i];
    }
    mean1 /= static_cast<double>(m);
    mean2 /= static_cast<double>(m);
    for (std::size_t i = 0; i < m; ++i) {
      const double f1 = tr.a11 * c1[i] + tr.a21 * c2[i] + tr.b1;
      const double f2 = tr.a12 * c1[i] + tr.a22 * c2[i] + tr.b2;
      const double r1 = t1[i] - f1;
      const double r2 = t2[i] - f2;
      resid2 += r1 * r1 + r2 * r2;
      const double d1 = t1[i] - mean1;
      const double d2 = t2[i] - mean2;
      target_center2 += d1 * d1 + d2 * d2;
    }
    const double scale = std::sqrt(target_center2) + 1e-300;
    residuals.push_back(std::sqrt(resid2) / scale);

    // LSFD between the pivot and sequence matrices (Definition 1), on a
    // thinner sub-sample (it needs matrix materialization).
    if (lsfd_count < sample_pairs / 4 + 1) {
      la::Matrix op(m, 2);
      la::Matrix se(m, 2);
      for (std::size_t i = 0; i < m; ++i) {
        op(i, 0) = c1[i];
        op(i, 1) = c2[i];
        se(i, 0) = t1[i];
        se(i, 1) = t2[i];
      }
      AFFINITY_ASSIGN_OR_RETURN(double d, Lsfd(op, se));
      lsfd_acc += d / scale;
      ++lsfd_count;
    }
  }
  if (residuals.empty()) {
    return Status::FailedPrecondition("no relationships available to sample");
  }

  report.sampled_pairs = residuals.size();
  double acc = 0;
  for (double r : residuals) acc += r;
  report.mean_relative_residual = acc / static_cast<double>(residuals.size());
  std::sort(residuals.begin(), residuals.end());
  report.p95_relative_residual = residuals[residuals.size() * 95 / 100];
  report.max_relative_residual = residuals.back();
  report.mean_relative_lsfd = lsfd_count > 0 ? lsfd_acc / static_cast<double>(lsfd_count) : 0.0;
  return report;
}

}  // namespace affinity::core
