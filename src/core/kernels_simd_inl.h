#ifndef AFFINITY_CORE_KERNELS_SIMD_INL_H_
#define AFFINITY_CORE_KERNELS_SIMD_INL_H_

/// \file kernels_simd_inl.h
/// The backend-generic span driver shared by the vector kernel TUs
/// (kernels_simd_avx2.cc / kernels_simd_neon.cc). Internal — include only
/// from those files.
///
/// Bit-identity argument (DESIGN.md §10): a canonical span accumulates
/// four independent lanes, lane l taking elements at span offset ≡ l
/// (mod kLanes), each lane left-associated in increasing index. A vector
/// accumulator register holds exactly those four lanes in its four 64-bit
/// slots, so one vector add per 4-element group performs the same four
/// scalar additions, on the same operands, in the same per-lane order —
/// identical IEEE roundings, identical bits. Multiplies are explicit
/// mul-then-add (never FMA — a fused multiply-add rounds once where the
/// scalar chain rounds twice). The leading reversed span and sub-group
/// remainders reuse the scalar reference code verbatim. Block pairing
/// (two independent full blocks in lockstep, partials still added in
/// block order) only reorders instruction *scheduling*, never the
/// additions inside a lane or the block-partial sequence.

#include <cstddef>

#include "core/kernels.h"

namespace affinity::core::kernels::simd {

/// Accumulates `kChains` sums over [0, m) at `anchor` in the canonical
/// order. `Traits` supplies the accumulator register type (`Acc`, four
/// double lanes) with `Zero()` / `Store(lanes, acc)`. `vstep(i, acc)`
/// folds the 4-element group at window offset i into acc[0..kChains) with
/// slotwise mul/add; `term(i, v)` is the scalar reference term used for
/// the leading reversed span and remainders.
template <int kChains, class Traits, class VecStep, class Term>
inline void AccumulateVec(std::size_t m, std::size_t anchor, double* out, const VecStep& vstep,
                          const Term& term) {
  using Acc = typename Traits::Acc;
  for (int c = 0; c < kChains; ++c) out[c] = 0.0;
  const std::size_t phase = anchor % kBlockElems;
  std::size_t base = 0;
  if (phase != 0 && m > 0) {
    // The leading partial span walks top-down (see kernels.h); its length
    // is at most kBlockElems − 1 — scalar reference, bit-identical by
    // construction.
    const std::size_t lead = kBlockElems - phase < m ? kBlockElems - phase : m;
    double lanes[kChains][kLanes] = {};
    detail::AccumulateSpanReversed<kChains>(0, lead, term, lanes);
    for (int c = 0; c < kChains; ++c) {
      out[c] += (lanes[c][0] + lanes[c][1]) + (lanes[c][2] + lanes[c][3]);
    }
    base = lead;
  }
  if constexpr (kChains <= 3) {
    // Two independent full blocks in lockstep: doubles the number of
    // in-flight add chains (the vector add latency, not throughput, is
    // what bounds a single chain). Partials still reduce and add in
    // block order. Wider fusions already saturate the FP ports and would
    // spill accumulators, so they skip the pairing.
    while (m - base >= 2 * kBlockElems) {
      Acc acc_a[kChains], acc_b[kChains];
      for (int c = 0; c < kChains; ++c) {
        acc_a[c] = Traits::Zero();
        acc_b[c] = Traits::Zero();
      }
      const std::size_t second = base + kBlockElems;
      for (std::size_t i = 0; i < kBlockElems; i += kLanes) {
        vstep(base + i, acc_a);
        vstep(second + i, acc_b);
      }
      double lanes[kChains][kLanes];
      for (int c = 0; c < kChains; ++c) {
        Traits::Store(lanes[c], acc_a[c]);
        out[c] += (lanes[c][0] + lanes[c][1]) + (lanes[c][2] + lanes[c][3]);
      }
      for (int c = 0; c < kChains; ++c) {
        Traits::Store(lanes[c], acc_b[c]);
        out[c] += (lanes[c][0] + lanes[c][1]) + (lanes[c][2] + lanes[c][3]);
      }
      base += 2 * kBlockElems;
    }
  }
  while (base < m) {
    const std::size_t end = base + kBlockElems < m ? base + kBlockElems : m;
    Acc acc[kChains];
    for (int c = 0; c < kChains; ++c) acc[c] = Traits::Zero();
    std::size_t i = base;
    for (; i + kLanes <= end; i += kLanes) vstep(i, acc);
    double lanes[kChains][kLanes];
    for (int c = 0; c < kChains; ++c) Traits::Store(lanes[c], acc[c]);
    for (std::size_t l = 0; i < end; ++i, ++l) {
      double v[kChains];
      term(i, v);
      for (int c = 0; c < kChains; ++c) lanes[c][l] += v[c];
    }
    for (int c = 0; c < kChains; ++c) {
      out[c] += (lanes[c][0] + lanes[c][1]) + (lanes[c][2] + lanes[c][3]);
    }
    base = end;
  }
}

}  // namespace affinity::core::kernels::simd

#endif  // AFFINITY_CORE_KERNELS_SIMD_INL_H_
