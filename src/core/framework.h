#ifndef AFFINITY_CORE_FRAMEWORK_H_
#define AFFINITY_CORE_FRAMEWORK_H_

/// \file framework.h
/// The AFFINITY facade — one call builds the full Fig. 2 stack (AFCLST →
/// SYMEX+ → pivot measures → SCAPE index → WF sketches) over a data matrix
/// and exposes a ready QueryEngine.
///
/// \code
///   auto dataset = affinity::ts::MakeStockData();
///   auto fw = affinity::core::Affinity::Build(dataset.matrix);
///   affinity::core::MetRequest req{affinity::core::Measure::kCorrelation, 0.9};
///   auto hot_pairs = fw->engine().Met(req, affinity::core::QueryMethod::kScape);
/// \endcode

#include <memory>

#include "common/status.h"
#include "core/query.h"
#include "core/scape.h"
#include "core/symex.h"
#include "dft/dft_correlation.h"
#include "ts/data_matrix.h"

namespace affinity::core {

/// End-to-end build configuration.
struct AffinityOptions {
  AfclstOptions afclst;     ///< clustering (k, γ_max, δ_min)
  SymexOptions symex;       ///< SYMEX+ by default
  ScapeOptions scape;       ///< B-tree fanout
  bool build_scape = true;  ///< build the SCAPE index
  bool build_dft = true;    ///< build the WF comparator sketches
  std::size_t dft_coefficients = dft::kDefaultCoefficients;
};

/// Wall-clock accounting of one Build call.
struct BuildProfile {
  double afclst_seconds = 0;
  double symex_seconds = 0;       ///< marching + fitting
  double preprocess_seconds = 0;  ///< pivot measures + per-series stats
  double scape_seconds = 0;
  double dft_seconds = 0;
  double total_seconds = 0;
};

/// The assembled framework. Owns the model, index, sketches, and engine;
/// movable, not copyable.
class Affinity {
 public:
  /// Builds everything over a copy of `data`.
  static StatusOr<Affinity> Build(const ts::DataMatrix& data, const AffinityOptions& options = {});

  Affinity(Affinity&&) noexcept = default;
  Affinity& operator=(Affinity&&) noexcept = default;

  /// The query engine with all built strategies attached.
  const QueryEngine& engine() const { return *engine_; }

  /// The SYMEX output (relationships, pivots, per-series stats).
  const AffinityModel& model() const { return *model_; }

  /// The SCAPE index, or nullptr when build_scape was false.
  const ScapeIndex* scape() const { return scape_.get(); }

  /// The WF estimator, or nullptr when build_dft was false.
  const dft::DftCorrelationEstimator* wf() const { return wf_.get(); }

  /// Build-phase timings.
  const BuildProfile& profile() const { return profile_; }

  /// The data the framework answers queries over.
  const ts::DataMatrix& data() const { return model_->data(); }

 private:
  Affinity() = default;

  std::unique_ptr<AffinityModel> model_;
  std::unique_ptr<ScapeIndex> scape_;
  std::unique_ptr<dft::DftCorrelationEstimator> wf_;
  std::unique_ptr<QueryEngine> engine_;
  BuildProfile profile_;
};

// ---------------------------------------------------------------------------
// Approximation-error metric (Section 4.1, Eq. 16).
// ---------------------------------------------------------------------------

/// %RMSE between `truth` and `approx` after normalizing both by
/// (max(truth) − min(truth)). Returns 0 for empty input; when the truth is
/// constant the normalizer degenerates and the unnormalized RMSE ×100 is
/// returned. Sizes must match (checked).
double PercentRmse(const std::vector<double>& truth, const std::vector<double>& approx);

}  // namespace affinity::core

#endif  // AFFINITY_CORE_FRAMEWORK_H_
