#ifndef AFFINITY_CORE_FRAMEWORK_H_
#define AFFINITY_CORE_FRAMEWORK_H_

/// \file framework.h
/// The AFFINITY facade — one call builds the full Fig. 2 stack (AFCLST →
/// SYMEX+ → pivot measures → SCAPE index → WF sketches) over a data matrix
/// and exposes a ready QueryEngine.
///
/// \code
///   auto dataset = affinity::ts::MakeStockData();
///   affinity::core::AffinityOptions options;
///   options.threads = 0;  // one worker per hardware thread
///   auto fw = affinity::core::Affinity::Build(dataset.matrix, options);
///   affinity::core::MetRequest req{affinity::core::Measure::kCorrelation, 0.9};
///   auto hot_pairs = fw->engine().Met(req);  // kAuto: planner picks SCAPE
/// \endcode
///
/// Build phases and full-sweep queries execute over a shared thread pool
/// (owned by the framework, or supplied externally via `BuildWith`);
/// results are identical at any thread count (DESIGN.md §7).

#include <memory>

#include "common/exec_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/query.h"
#include "core/scape.h"
#include "core/symex.h"
#include "dft/dft_correlation.h"
#include "ts/data_matrix.h"

namespace affinity::core {

class StreamingAffinity;

/// End-to-end build configuration.
struct AffinityOptions {
  AfclstOptions afclst;     ///< clustering (k, γ_max, δ_min)
  SymexOptions symex;       ///< SYMEX+ by default
  ScapeOptions scape;       ///< B-tree fanout
  bool build_scape = true;  ///< build the SCAPE index
  bool build_dft = true;    ///< build the WF comparator sketches
  std::size_t dft_coefficients = dft::kDefaultCoefficients;
  /// Worker threads for build phases and full-sweep queries: 1 =
  /// sequential (no pool), 0 = one per hardware thread, otherwise the
  /// exact count. Ignored by `BuildWith` (the supplied context rules).
  std::size_t threads = 1;
};

/// Wall-clock accounting of one Build call.
struct BuildProfile {
  double afclst_seconds = 0;
  double symex_seconds = 0;       ///< marching + fitting
  double preprocess_seconds = 0;  ///< pivot measures + per-series stats
  double scape_seconds = 0;
  double dft_seconds = 0;
  double total_seconds = 0;
  std::size_t threads = 1;        ///< parallelism the build ran with
};

/// The assembled framework. Owns the model, index, sketches, engine, and
/// (when `options.threads != 1`) the thread pool; movable, not copyable.
class Affinity {
 public:
  /// Builds everything over a copy of `data`. When `options.threads` asks
  /// for parallelism the framework creates and owns the pool; it serves
  /// both the build and all subsequent engine queries.
  static StatusOr<Affinity> Build(const ts::DataMatrix& data, const AffinityOptions& options = {});

  /// As Build, but executes over a caller-supplied context (e.g. a pool
  /// shared across streaming rebuilds). The pool behind `exec` must
  /// outlive the returned framework; `options.threads` is ignored.
  static StatusOr<Affinity> BuildWith(const ts::DataMatrix& data, const AffinityOptions& options,
                                      const ExecContext& exec);

  /// Reassembles a queryable framework around an already-built model —
  /// one restored by `LoadModel` or carried in a shard manifest
  /// (serialize.h) — rebuilding the SCAPE index and WF sketches per
  /// `options` without re-running AFCLST / SYMEX+ (rebuilding the index
  /// from a model is linear and fast, Fig. 14). Pool ownership follows
  /// `Build`: `options.threads` sizes a framework-owned pool.
  static StatusOr<Affinity> FromModel(AffinityModel model, const AffinityOptions& options = {});

  /// As FromModel over a caller-supplied execution context (the pool must
  /// outlive the framework; `options.threads` is ignored).
  static StatusOr<Affinity> FromModelWith(AffinityModel model, const AffinityOptions& options,
                                          const ExecContext& exec);

  Affinity(Affinity&&) noexcept = default;
  Affinity& operator=(Affinity&&) noexcept = default;

  /// The query engine with all built strategies attached.
  const QueryEngine& engine() const { return *engine_; }

  /// The SYMEX output (relationships, pivots, per-series stats).
  const AffinityModel& model() const { return *model_; }

  /// The SCAPE index, or nullptr when build_scape was false.
  const ScapeIndex* scape() const { return scape_.get(); }

  /// The WF estimator, or nullptr when build_dft was false.
  const dft::DftCorrelationEstimator* wf() const { return wf_.get(); }

  /// Build-phase timings.
  const BuildProfile& profile() const { return profile_; }

  /// The execution context the framework builds and queries with.
  const ExecContext& exec() const { return exec_; }

  /// The data the framework answers queries over.
  const ts::DataMatrix& data() const { return model_->data(); }

  /// Rebuilds the WF comparator sketches over the current model data — the
  /// incremental maintenance path calls this after sliding the window so
  /// `wf()` stays coherent with the snapshot. No-op when WF was not built.
  Status RefreshWf();

 private:
  Affinity() = default;

  // The incremental maintenance path (core/incremental) mutates the model
  // and index in place through the streaming facade.
  friend class StreamingAffinity;
  AffinityModel* mutable_model() { return model_.get(); }
  ScapeIndex* mutable_scape() { return scape_.get(); }
  QueryEngine* mutable_engine() { return engine_.get(); }

  std::unique_ptr<ThreadPool> pool_;  ///< set when Build created its own
  ExecContext exec_;
  std::unique_ptr<AffinityModel> model_;
  std::unique_ptr<ScapeIndex> scape_;
  std::unique_ptr<dft::DftCorrelationEstimator> wf_;
  std::unique_ptr<QueryEngine> engine_;
  BuildProfile profile_;
  std::size_t dft_coefficients_ = 0;  ///< remembered for RefreshWf
};

// ---------------------------------------------------------------------------
// Approximation-error metric (Section 4.1, Eq. 16).
// ---------------------------------------------------------------------------

/// %RMSE between `truth` and `approx` after normalizing both by
/// (max(truth) − min(truth)). Returns 0 for empty input; when the truth is
/// constant the normalizer degenerates and the unnormalized RMSE ×100 is
/// returned. Sizes must match (checked).
double PercentRmse(const std::vector<double>& truth, const std::vector<double>& approx);

}  // namespace affinity::core

#endif  // AFFINITY_CORE_FRAMEWORK_H_
