#ifndef AFFINITY_CORE_FIT_KERNELS_H_
#define AFFINITY_CORE_FIT_KERNELS_H_

/// \file fit_kernels.h
/// The scalar kernels of the affine fit (normal equations over the design
/// matrix [c1, c2, 1m]), shared by the SYMEX build path (symex.cc) and the
/// incremental maintenance path (incremental.cc).
///
/// Sharing one implementation is not cosmetic: the incremental path's
/// equivalence contract (DESIGN.md §8) promises that an exact refit
/// reproduces a from-scratch fit *bit for bit*, which requires both paths
/// to run the same accumulation order and the same singularity policy.
/// All sums run in the canonical blocked order of core/kernels, so they
/// also match the hoisted column marginals of RecomputeDerived and a
/// RollingCrossSums::Reset over the same columns (DESIGN.md §10).

#include <cmath>
#include <cstddef>

#include "core/affine.h"
#include "core/kernels.h"

namespace affinity::core::fit {

/// Packed symmetric 3×3 Gram of the design matrix [c1, c2, 1m]:
/// order g11, g12, g13, g22, g23, g33.
struct Gram3 {
  double g[6];
};

/// Row-major 3×3 matrix (the cached inverse normal-equation factor).
struct Mat3 {
  double v[9];
};

/// Gram of [c1, c2, 1m] in one fused pass (the per-pivot cost). Each
/// accumulator is an independent blocked chain, so the entries are
/// bit-identical to the matching PairMatrixMeasures sums over the same
/// columns (dot11/dot12/dot22/h1/h2) and to the hoisted column marginals
/// RecomputeDerived assembles them from.
inline Gram3 ComputeGram(const double* c1, const double* c2, std::size_t m,
                         std::size_t anchor = 0) {
  double g[5];  // s11, s12, s22, h1, h2
  kernels::FusedGram5(c1, c2, m, g, anchor);
  return Gram3{{g[0], g[1], g[3], g[2], g[4], static_cast<double>(m)}};
}

/// Assembles the Gram from pre-computed pivot measures — the same six sums
/// ComputeGram produces, so the two construction routes agree bitwise.
inline Gram3 GramFromMeasures(const PairMatrixMeasures& pm) {
  return Gram3{{pm.dot11, pm.dot12, pm.h1, pm.dot22, pm.h2, static_cast<double>(pm.m)}};
}

/// Inverts the packed symmetric Gram; returns false when (numerically)
/// singular — i.e. the pivot columns are collinear or constant.
inline bool InvertGram(const Gram3& gm, Mat3* out) {
  const double a = gm.g[0], b = gm.g[1], c = gm.g[2];
  const double d = gm.g[3], e = gm.g[4], f = gm.g[5];
  // Full symmetric matrix [[a,b,c],[b,d,e],[c,e,f]].
  const double co00 = d * f - e * e;
  const double co01 = -(b * f - c * e);
  const double co02 = b * e - c * d;
  const double det = a * co00 + b * co01 + c * co02;
  // Scale-aware singularity test.
  const double scale = std::fabs(a) + std::fabs(d) + std::fabs(f) + 1e-30;
  if (std::fabs(det) < 1e-12 * scale * scale * scale) return false;
  const double inv = 1.0 / det;
  const double co11 = a * f - c * c;
  const double co12 = -(a * e - b * c);
  const double co22 = a * d - b * b;
  out->v[0] = co00 * inv;
  out->v[1] = co01 * inv;
  out->v[2] = co02 * inv;
  out->v[3] = co01 * inv;
  out->v[4] = co11 * inv;
  out->v[5] = co12 * inv;
  out->v[6] = co02 * inv;
  out->v[7] = co12 * inv;
  out->v[8] = co22 * inv;
  return true;
}

/// Right-hand side of the free-column fit: ([c1,c2,1]ᵀ t). The same
/// blocked kernel RollingCrossSums::Reset runs, so a re-materialized
/// incremental accumulator matches this bit for bit.
inline void ComputeRhs(const double* c1, const double* c2, const double* t, std::size_t m,
                       double rhs[3], std::size_t anchor = 0) {
  kernels::FusedCross3(c1, c2, t, m, rhs, anchor);
}

/// x = ginv · rhs.
inline void Solve3(const Mat3& ginv, const double rhs[3], double x[3]) {
  x[0] = ginv.v[0] * rhs[0] + ginv.v[1] * rhs[1] + ginv.v[2] * rhs[2];
  x[1] = ginv.v[3] * rhs[0] + ginv.v[4] * rhs[1] + ginv.v[5] * rhs[2];
  x[2] = ginv.v[6] * rhs[0] + ginv.v[7] * rhs[1] + ginv.v[8] * rhs[2];
}

/// Arithmetic tail of the rank-deficient fallback, taking the four
/// pre-accumulated sums (Σc1², Σc1, Σc1·t, Σt). Split out so the
/// incremental path can feed it from maintained accumulators in O(1)
/// instead of re-reading the window.
inline void SolveRankDeficient(double s11, double h1, double r0, double r2, std::size_t m,
                               double x[3]) {
  const double md = static_cast<double>(m);
  const double det = s11 * md - h1 * h1;
  if (std::fabs(det) < 1e-12 * (std::fabs(s11) + 1.0) * md) {
    x[0] = 0.0;
    x[1] = 0.0;
    x[2] = m == 0 ? 0.0 : r2 / md;
    return;
  }
  x[0] = (r0 * md - h1 * r2) / det;
  x[1] = 0.0;
  x[2] = (s11 * r2 - h1 * r0) / det;
}

/// Degenerate fallback when the Gram is singular (pivot columns collinear):
/// fit t ≈ x0·c1 + x2·1 only. Sums run as the same blocked chains the
/// incremental path feeds SolveRankDeficient from (pivot measures + a
/// Reset rhs), keeping the two routes bit-identical.
inline void FitRankDeficient(const double* c1, const double* t, std::size_t m, double x[3],
                             std::size_t anchor = 0) {
  const kernels::Marginals mc = kernels::ColumnMarginals(c1, m, anchor);
  // Σc1·t / Σt as the same chains FusedCross3 feeds the incremental
  // accumulators (r0 = chain of BlockedDot(c1, t), r2 = BlockedSum(t)).
  const double r0 = kernels::BlockedDot(c1, t, m, anchor);
  const double r2 = kernels::BlockedSum(t, m, anchor);
  SolveRankDeficient(mc.sumsq, mc.sum, r0, r2, m, x);
}

/// Assembles the transform from the free-column solution; the common
/// column's coefficients are exact by construction (see symex.h docs).
inline AffineTransform MakeTransform(bool series_first, const double x[3]) {
  AffineTransform t;
  if (series_first) {
    t.a11 = 1.0;
    t.a21 = 0.0;
    t.b1 = 0.0;
    t.a12 = x[0];
    t.a22 = x[1];
    t.b2 = x[2];
  } else {
    t.a12 = 0.0;
    t.a22 = 1.0;
    t.b2 = 0.0;
    t.a11 = x[0];
    t.a21 = x[1];
    t.b1 = x[2];
  }
  return t;
}

}  // namespace affinity::core::fit

#endif  // AFFINITY_CORE_FIT_KERNELS_H_
