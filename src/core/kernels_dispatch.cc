/// Backend resolution for the chain kernels (kernels.h). The table is
/// picked once, lazily: the `AFFINITY_KERNEL_BACKEND` env override first,
/// then CPU-feature detection, then the scalar reference. Lives in the
/// `affinity_kernels` library so `ts/` (below core in the link order) can
/// dispatch through the same table as everything above it.

#include "core/kernels.h"

#include <atomic>
#include <cstring>

#include <cstdlib>

namespace affinity::core::kernels {
namespace {

// Anchor-explicit trampolines: the scalar reference kernels take default
// arguments, so their addresses don't match the table's pointer types
// directly on all compilers — go through exact-signature wrappers.
double ScalarBlockedSum(const double* x, std::size_t m, std::size_t anchor) {
  return scalar::BlockedSum(x, m, anchor);
}
double ScalarBlockedDot(const double* x, const double* y, std::size_t m, std::size_t anchor) {
  return scalar::BlockedDot(x, y, m, anchor);
}
Marginals ScalarColumnMarginals(const double* x, std::size_t m, std::size_t anchor) {
  return scalar::ColumnMarginals(x, m, anchor);
}
void ScalarFusedDot3(const double* x, const double* y, std::size_t m, double* dot_xy,
                     double* dot_xx, double* dot_yy, std::size_t anchor) {
  scalar::FusedDot3(x, y, m, dot_xy, dot_xx, dot_yy, anchor);
}
void ScalarFusedCross3(const double* c1, const double* c2, const double* t, std::size_t m,
                       double* out, std::size_t anchor) {
  scalar::FusedCross3(c1, c2, t, m, out, anchor);
}
void ScalarFusedGram5(const double* c1, const double* c2, std::size_t m, double* out,
                      std::size_t anchor) {
  scalar::FusedGram5(c1, c2, m, out, anchor);
}
void ScalarFusedPairMoments(const double* x, const double* y, std::size_t m, double* out,
                            std::size_t anchor) {
  scalar::FusedPairMoments(x, y, m, out, anchor);
}

constexpr BackendOps kScalarOps = {
    Backend::kScalar,       "scalar",          &ScalarBlockedSum,
    &ScalarBlockedDot,      &ScalarColumnMarginals,
    &ScalarFusedDot3,       &ScalarFusedCross3, &ScalarFusedGram5,
    &ScalarFusedPairMoments,
};

/// The best backend this CPU can actually run, ignoring overrides.
const BackendOps* DetectOps() {
#if defined(__x86_64__) || defined(__i386__)
  if (const BackendOps* avx2 = Avx2Ops(); avx2 != nullptr && __builtin_cpu_supports("avx2")) {
    return avx2;
  }
#elif defined(__aarch64__)
  if (const BackendOps* neon = NeonOps(); neon != nullptr) return neon;
#endif
  return &kScalarOps;
}

const BackendOps* OpsFor(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &kScalarOps;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      if (const BackendOps* avx2 = Avx2Ops();
          avx2 != nullptr && __builtin_cpu_supports("avx2")) {
        return avx2;
      }
#endif
      return nullptr;
    case Backend::kNeon:
      return NeonOps();
  }
  return nullptr;
}

const BackendOps* Resolve() {
  if (const char* env = std::getenv("AFFINITY_KERNEL_BACKEND");
      env != nullptr && *env != '\0') {
    Backend want;
    if (ParseBackend(env, &want)) {
      if (const BackendOps* ops = OpsFor(want); ops != nullptr) return ops;
      // Requested backend can't run here (e.g. avx2 on an old CPU):
      // fall through to detection rather than crash in a vector kernel.
    }
  }
  return DetectOps();
}

std::atomic<const BackendOps*> g_active{nullptr};

std::atomic<std::size_t> g_prefetch_distance{kDefaultPrefetchDistance};

}  // namespace

const BackendOps& ActiveOps() {
  const BackendOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Lazy first-use resolution. Concurrent first calls all Resolve() to
    // the same table, but the install must be a compare-exchange: an
    // unconditional store here could overwrite an explicit SetBackend()
    // that raced with first use, silently reverting the caller's choice.
    // Whoever wins the CAS defines the backend; losers adopt the winner.
    const BackendOps* resolved = Resolve();
    if (g_active.compare_exchange_strong(ops, resolved, std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      ops = resolved;
    }
  }
  return *ops;
}

Backend ActiveBackend() { return ActiveOps().id; }

const char* ActiveBackendName() { return ActiveOps().name; }

bool BackendSupported(Backend b) { return OpsFor(b) != nullptr; }

bool SetBackend(Backend b) {
  const BackendOps* ops = OpsFor(b);
  if (ops == nullptr) return false;
  g_active.store(ops, std::memory_order_release);
  return true;
}

bool ParseBackend(const char* name, Backend* out) {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = Backend::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = Backend::kAvx2;
    return true;
  }
  if (std::strcmp(name, "neon") == 0) {
    *out = Backend::kNeon;
    return true;
  }
  if (std::strcmp(name, "auto") == 0) {
    *out = DetectOps()->id;
    return true;
  }
  return false;
}

std::size_t PrefetchDistance() {
  return g_prefetch_distance.load(std::memory_order_relaxed);
}

void SetPrefetchDistance(std::size_t elems) {
  g_prefetch_distance.store(elems, std::memory_order_relaxed);
}

}  // namespace affinity::core::kernels
