#ifndef AFFINITY_CORE_SYMEX_H_
#define AFFINITY_CORE_SYMEX_H_

/// \file symex.h
/// The SYMEX / SYMEX+ algorithms (Algorithm 2) and the resulting
/// `AffinityModel` — the queryable bundle of affine relationships, pivot
/// measures, and per-series normalizers that the WA method and the SCAPE
/// index are built from.
///
/// SYMEX systematically sweeps the sequence-pair set P with two marching
/// fronts (from the border inward and from the middle outward), assigning
/// each sequence pair e = (u, v) a pivot pair — (u, ω(v)) when covered by a
/// row scan, (ω(u), v) when covered by a column scan — and fitting the
/// affine relationship Se ≈ Op·Ae + 1·beᵀ by least squares. SYMEX+ caches
/// the per-pivot normal-equation factor so only the per-pair right-hand
/// side remains (the paper's pseudo-inverse cache, ~4× faster).
///
/// Because the pivot matrix shares one column with the sequence-pair matrix,
/// that column's transform coefficients are (1, 0, 0) *exactly*; we fix them
/// structurally and fit only the free column, which both accelerates the fit
/// and makes Lemma 1 (exact dot products) hold to machine precision.

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/afclst.h"
#include "core/affine.h"
#include "core/kernels.h"
#include "core/measures.h"
#include "ts/data_matrix.h"

namespace affinity::core {

/// A pivot pair p (Definition 2 or its mirror):
///  * series_first = true  → p = (u, ω(v)), O_p = [s_series, r_cluster];
///  * series_first = false → p = (ω(u), v), O_p = [r_cluster, s_series].
struct PivotPair {
  ts::SeriesId series = 0;
  std::uint32_t cluster = 0;
  bool series_first = true;

  /// Dense key for hashing (the paper's pivotHash key).
  std::uint64_t Key() const {
    return (static_cast<std::uint64_t>(series) << 33) |
           (static_cast<std::uint64_t>(cluster) << 1) |
           static_cast<std::uint64_t>(series_first);
  }
  bool operator==(const PivotPair& o) const {
    return series == o.series && cluster == o.cluster && series_first == o.series_first;
  }
};

/// One entry of the affHash map: the pivot a sequence pair is related to
/// and the fitted transform O_p → S_e.
struct AffineRecord {
  PivotPair pivot;
  AffineTransform transform;

  /// The β vector of Table 2 — the free (non-common) column's coefficients
  /// (a_1c, a_2c, b_c). Measure-independent, derived only from the
  /// relationship; the decoupled half of the SCAPE key.
  void Beta(double out[3]) const {
    if (pivot.series_first) {
      out[0] = transform.a12;
      out[1] = transform.a22;
      out[2] = transform.b2;
    } else {
      out[0] = transform.a11;
      out[1] = transform.a21;
      out[2] = transform.b1;
    }
  }
};

/// SYMEX configuration.
struct SymexOptions {
  /// true → SYMEX+ (per-pivot pseudo-inverse cache); false → plain SYMEX
  /// (Algorithm 2 verbatim: the pseudo-inverse is re-derived per pair).
  bool cache_pseudo_inverse = true;
  /// Stop after this many relationships (scalability sweeps, Fig. 13/14).
  std::size_t max_relationships = std::numeric_limits<std::size_t>::max();
};

/// Build-phase accounting, reported by benches.
struct SymexStats {
  std::size_t relationships = 0;     ///< |affHash|
  std::size_t pivots = 0;            ///< |pivotHash|
  std::size_t cache_hits = 0;        ///< pivot-factor cache hits (SYMEX+)
  std::size_t cache_misses = 0;      ///< pivot-factor cache misses
  double afclst_seconds = 0;         ///< clustering time
  double march_seconds = 0;          ///< marching + fitting time
  double preprocess_seconds = 0;     ///< pivot measures + per-series stats
};

/// Exact per-series statistics kept for normalizers (Eq. 8's "compute and
/// store Σ(y1), Σ(y2) separately") and for the L-measure relationships.
struct SeriesStats {
  double mean = 0;
  double variance = 0;  ///< population variance (correlation normalizer)
  double sumsq = 0;     ///< ‖s‖² (cosine/Jaccard/Dice normalizers)
  double sum = 0;
};

/// The series-level 1-D affine relationship s_v ≈ gain·r_ω(v) + offset·1
/// used for L-measures (one per series — the "linear in n" count of
/// Table 4's footnote).
struct SeriesAffine {
  double gain = 0;
  double offset = 0;
};

/// A pivotHash entry: the pivot pair plus its pre-computed measures
/// (filled during the pre-processing step of §4.1).
struct PivotHashEntry {
  PivotPair pivot;
  PairMatrixMeasures measures;
};

/// Retained block partials of RecomputeDerived's O(window) chains — the
/// per-model slice of the BlockPartialCache (DESIGN.md §10): per-column
/// {Σx, Σx²} marginal chains, per-pivot Σc1·c2 (the dot12 cross term),
/// and per-series Σr·s (the series-level fit's cross term). Owned by
/// IncrementalMaintainer, which drops it whenever the frozen structure
/// changes (escalation, rebuild, restore); RecomputeDerived slides every
/// chain to the current window anchor, recomputing only the grid blocks
/// the slide touched and reusing the interior partials bit for bit.
struct DerivedBlockCache {
  /// Retained mode histogram of one window column. Bin counts are
  /// integers, so the maintenance path can delta-update them exactly
  /// (decrement evicted samples, increment entering ones) as long as the
  /// binning — the window (min, max) — is unchanged; any extremes change
  /// flips `valid` and RecomputeDerived re-fills from the sorted view.
  /// The published mode is then `ModeFromHistogram`, bitwise identical to
  /// the from-scratch estimator over the same samples.
  struct ColumnModeHist {
    double lo = 0.0;
    double hi = 0.0;
    std::vector<std::uint32_t> counts;
    bool valid = false;
  };

  std::vector<kernels::BlockChain<2>> columns;  ///< n series + k centres
  std::vector<kernels::BlockChain<1>> pivots;   ///< pivot dot12, sorted-by-key order
  std::vector<kernels::BlockChain<1>> series;   ///< per-series Σ centre·series
  std::vector<ColumnModeHist> modes;            ///< n + k mode histograms
  kernels::BlockSpanStats last;                 ///< touched/reused of the last refresh

  void Invalidate() {
    for (auto& chain : columns) chain.Invalidate();
    for (auto& chain : pivots) chain.Invalidate();
    for (auto& chain : series) chain.Invalidate();
    for (auto& mode : modes) mode.valid = false;
  }
};

/// The queryable output of SYMEX: everything the WA strategy and the SCAPE
/// index need. Owns a copy of the data matrix (used for naive verification
/// and pivot-measure computation).
class AffinityModel {
 public:
  /// The data the model was built over.
  const ts::DataMatrix& data() const { return data_; }

  /// AFCLST output the model was built with.
  const AfclstResult& clustering() const { return clustering_; }

  /// Number of affine relationships (= |P| when not truncated).
  std::size_t relationship_count() const { return aff_hash_.size(); }

  /// Number of distinct pivot pairs.
  std::size_t pivot_count() const { return pivot_hash_.size(); }

  /// Build statistics.
  const SymexStats& stats() const { return stats_; }

  /// The affine relationship of a sequence pair, or nullptr when the model
  /// was truncated before reaching it.
  const AffineRecord* FindRelationship(const ts::SequencePair& e) const;

  /// Pre-computed measures of a pivot matrix, or nullptr.
  const PairMatrixMeasures* FindPivotMeasures(const PivotPair& p) const;

  /// Exact per-series statistics.
  const SeriesStats& series_stats(ts::SeriesId v) const { return series_stats_[v]; }

  /// Series-level affine relationship of series v.
  const SeriesAffine& series_affine(ts::SeriesId v) const { return series_affine_[v]; }

  /// L-measure of cluster centre ℓ (measure must be an L-measure).
  StatusOr<double> CenterLocation(Measure measure, int cluster) const;

  // --- The WA method (Section 4.1) -----------------------------------------

  /// L-measure of one series through its series-level relationship: O(1).
  StatusOr<double> SeriesMeasure(Measure measure, ts::SeriesId v) const;

  /// T- or D-measure of a sequence pair through its affine relationship:
  /// O(1). NotFound when the (truncated) model lacks the relationship.
  StatusOr<double> PairMeasure(Measure measure, const ts::SequencePair& e) const;

  /// Exact stored normalizer U_e of a separable D-measure (Eq. 8).
  StatusOr<double> PairNormalizer(Measure measure, const ts::SequencePair& e) const;

  /// All six pair measures of `e` (covariance .. Dice, in `Measure -
  /// kCovariance` table order) through a single relationship lookup — the
  /// serving layer's bulk WA fill (DESIGN.md §11). Each `out[t]` is
  /// bitwise identical to the corresponding PairMeasure call (same
  /// expressions, same evaluation order; the propagated T-values and the
  /// normalizers are shared, which PairMeasure recomputes per call).
  /// NotFound when the (truncated) model lacks the relationship.
  Status PairMeasures6(const ts::SequencePair& e, double out[6]) const;

  /// As PairMeasures6 with the relationship already in hand — the scatter
  /// form behind the serving layer's bulk WA fill: iterating the
  /// relationship hash once (`ForEachRelationship`) and calling this per
  /// record skips the per-pair hash lookup entirely. `rec` must be `e`'s
  /// record (as returned by FindRelationship); the six values are bitwise
  /// identical to the lookup form.
  void PairMeasures6From(const AffineRecord& rec, const ts::SequencePair& e,
                         double out[6]) const;

  /// Same, with the pivot's matrix measures already resolved — the bulk
  /// fill resolves each of the ~k² pivots once instead of hashing per
  /// pair. Identical bits either way.
  void PairMeasures6From(const AffineRecord& rec, const ts::SequencePair& e,
                         const PairMatrixMeasures& pm, double out[6]) const;

  /// Iterates all relationships in ascending pair-key order:
  /// fn(const ts::SequencePair&, const AffineRecord&). The sort makes the
  /// visit order canonical — SCAPE index layout and snapshot flattening
  /// inherit it, so they cannot drift with the hash implementation.
  template <typename Fn>
  void ForEachRelationship(Fn&& fn) const {
    std::vector<std::pair<std::uint64_t, const AffineRecord*>> items;
    items.reserve(aff_hash_.size());
    // affinity-lint: allow(unordered-iter): collect-then-sort — visits happen in key order below
    for (const auto& [key, rec] : aff_hash_) items.emplace_back(key, &rec);
    std::sort(items.begin(), items.end());
    for (const auto& [key, rec] : items) {
      const ts::SequencePair e{static_cast<ts::SeriesId>(key >> 32),
                               static_cast<ts::SeriesId>(key & 0xffffffffULL)};
      fn(e, *rec);
    }
  }

  /// Iterates all pivots in ascending pivot-key order:
  /// fn(const PivotPair&, const PairMatrixMeasures&).
  template <typename Fn>
  void ForEachPivot(Fn&& fn) const {
    std::vector<std::pair<std::uint64_t, const PivotHashEntry*>> items;
    items.reserve(pivot_hash_.size());
    // affinity-lint: allow(unordered-iter): collect-then-sort — visits happen in key order below
    for (const auto& [key, entry] : pivot_hash_) items.emplace_back(key, &entry);
    std::sort(items.begin(), items.end());
    for (const auto& [key, entry] : items) fn(entry->pivot, entry->measures);
  }

  /// Recomputes every derived quantity from `data()` and `clustering()`:
  /// pivot measures, per-series stats, series-level relationships, and the
  /// centre L-measures — exactly the pre-processing pass of RunSymex. The
  /// incremental maintenance path calls this after sliding the window so
  /// published moments and measures stay bit-identical to a from-scratch
  /// build over the same window and clustering (DESIGN.md §8).
  ///
  /// `sorted_columns`, when given, must hold every window column sorted
  /// ascending — columns 0..n-1 the data series, n..n+k-1 the cluster
  /// centres. Medians are then read as order statistics and modes binned
  /// by boundary bisection instead of a histogram pass (the maintenance
  /// path keeps these sorted incrementally). The published values are
  /// identical either way: order statistics and bin counts do not depend
  /// on the input permutation.
  ///
  /// `partials`, when given, retains the blocked partial sums of every
  /// O(window) chain across calls (DESIGN.md §10): each refresh then
  /// recomputes only the grid blocks the slide touched —
  /// O(interval + kBlockElems) per chain instead of O(window) — and the
  /// totals are bitwise identical to the cold pass by construction. The
  /// cache is valid only while the data/clustering structure is frozen
  /// (the incremental maintenance contract); its chain counts are
  /// (re)sized here on first use.
  void RecomputeDerived(const ExecContext& exec = {},
                        const la::Matrix* sorted_columns = nullptr,
                        DerivedBlockCache* partials = nullptr);

 private:
  friend class IncrementalMaintainer;
  friend StatusOr<AffinityModel> BuildAffinityModel(const ts::DataMatrix&, const AfclstOptions&,
                                                    const SymexOptions&, const ExecContext&);
  friend StatusOr<AffinityModel> RunSymex(const ts::DataMatrix&, AfclstResult,
                                          const SymexOptions&, const ExecContext&);
  friend Status WriteModelStream(const AffinityModel&, std::ostream&);
  friend StatusOr<AffinityModel> ReadModelStream(std::istream&);

  ts::DataMatrix data_;
  AfclstResult clustering_;
  SymexStats stats_;
  std::unordered_map<std::uint64_t, AffineRecord> aff_hash_;       // key: SequencePair::Key()
  std::unordered_map<std::uint64_t, PivotHashEntry> pivot_hash_;   // key: PivotPair::Key()
  std::vector<SeriesStats> series_stats_;                          // size n
  std::vector<SeriesAffine> series_affine_;                        // size n
  // L-measure values of the k centres: [measure][cluster];
  // rows: 0 = mean, 1 = median, 2 = mode.
  std::vector<std::vector<double>> center_loc_;
};

/// Runs AFCLST then SYMEX/SYMEX+ and finalizes the model (pivot measures,
/// per-series stats, series-level relationships). The marching order is
/// inherently sequential (it decides pivot assignment), but the fitting
/// and pre-processing passes fan out over `exec`; the model is identical
/// at any thread count.
StatusOr<AffinityModel> BuildAffinityModel(const ts::DataMatrix& data,
                                           const AfclstOptions& afclst_options,
                                           const SymexOptions& symex_options,
                                           const ExecContext& exec = {});

/// As above with a pre-computed clustering (lets benches reuse AFCLST output
/// across SYMEX variants).
StatusOr<AffinityModel> RunSymex(const ts::DataMatrix& data, AfclstResult clustering,
                                 const SymexOptions& symex_options,
                                 const ExecContext& exec = {});

}  // namespace affinity::core

#endif  // AFFINITY_CORE_SYMEX_H_
