#include "core/afclst.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/random.h"
#include "la/svd.h"
#include "ts/stats.h"

namespace affinity::core {

namespace {

/// Projection error of column `s` onto the unit-norm centre `r`:
/// ‖s − r(rᵀs)‖ = sqrt(‖s‖² − (rᵀs)²).
double ProjectionError(const double* s, const double* r, std::size_t m, double s_norm2) {
  double dot = 0.0;
  // affinity-lint: allow(fp-accumulate): sequential per-column dot inside the clustering
  // loop — fixed order, identical at any thread count (columns are the parallel unit)
  for (std::size_t i = 0; i < m; ++i) dot += s[i] * r[i];
  const double err2 = s_norm2 - dot * dot;
  return std::sqrt(err2 > 0.0 ? err2 : 0.0);
}

}  // namespace

StatusOr<AfclstResult> RunAfclst(const ts::DataMatrix& data, const AfclstOptions& options,
                                 const ExecContext& exec) {
  const std::size_t n = data.n();
  const std::size_t m = data.m();
  if (n == 0 || m == 0) return Status::InvalidArgument("AFCLST requires a non-empty data matrix");
  if (options.k == 0) return Status::InvalidArgument("AFCLST requires k >= 1");
  if (options.k > n) {
    return Status::InvalidArgument("AFCLST requires k <= n (got k=" +
                                   std::to_string(options.k) + ", n=" + std::to_string(n) + ")");
  }
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("AFCLST requires max_iterations >= 1");
  }

  const bool quality_active =
      options.min_center_quality > 0.0 && !options.series_quality.empty();
  if (quality_active && options.series_quality.size() != n) {
    return Status::InvalidArgument("AFCLST series_quality size " +
                                   std::to_string(options.series_quality.size()) +
                                   " does not match n=" + std::to_string(n));
  }

  // Series eligible to seed or steer a centre. Low-quality series (below
  // min_center_quality) are excluded — they still get assigned, but a
  // heavily forward-filled column must not define a pivot. When every
  // series is below the bar the exclusion disables itself (a centre-less
  // clustering is worse than a noisy one). With the exclusion off this is
  // the identity list, and the seeding below consumes the rng exactly as
  // before.
  std::vector<std::size_t> seedable;
  seedable.reserve(n);
  std::vector<char> eligible(n, 1);
  if (quality_active) {
    for (std::size_t j = 0; j < n; ++j) {
      eligible[j] = options.series_quality[j] >= options.min_center_quality ? 1 : 0;
      if (eligible[j]) seedable.push_back(j);
    }
    if (seedable.size() < options.k) {  // too few clean series to seed k centres
      seedable.clear();
      std::fill(eligible.begin(), eligible.end(), 1);
    }
  }
  if (seedable.empty()) {
    for (std::size_t j = 0; j < n; ++j) seedable.push_back(j);
  }

  Xoshiro256 rng(options.seed);
  const std::size_t k = options.k;

  // AFCLST operates on zero-meaned columns: the clustering objective (LSFD,
  // Definition 1) is translation-invariant, and every downstream least-
  // squares fit carries an intercept column, so a series' DC offset must not
  // influence its cluster. Without centring, a shared offset dominates the
  // projection and collapses distinct shapes into one cluster.
  const la::Matrix centered = data.matrix().CenteredColumnsCopy();

  // Cached squared norms of the centred series (initialization and every
  // assignment round use them).
  std::vector<double> norm2(n);
  ParallelChunks(exec, n, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const double* s = centered.ColData(j);
      norm2[j] = ts::stats::DotProduct(s, s, m);
    }
  });

  // Initialization phase: Algorithm 1 seeds with random columns; we harden
  // it with farthest-first (k-means++-style) seeding — centre 0 is a random
  // column, each further centre is the column worst represented by the
  // centres chosen so far. Deterministic given the seed, and much less
  // prone to merging planted clusters.
  la::Matrix centers(m, k);
  {
    la::Vector first = centered.Col(seedable[rng.NextBounded(seedable.size())]);
    if (first.Normalize() == 0.0) first[0] = 1.0;  // constant series: arbitrary axis
    centers.SetCol(0, first);
    std::vector<double> best_err(n, 0.0);
    ParallelChunks(exec, n, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
      for (std::size_t j = lo; j < hi; ++j) {
        best_err[j] = ProjectionError(centered.ColData(j), centers.ColData(0), m, norm2[j]);
      }
    });
    for (std::size_t l = 1; l < k; ++l) {
      std::size_t farthest = seedable[0];
      for (const std::size_t j : seedable) {
        if (best_err[j] > best_err[farthest]) farthest = j;
      }
      la::Vector c = centered.Col(farthest);
      if (c.Normalize() == 0.0) c[0] = 1.0;
      centers.SetCol(l, c);
      ParallelChunks(exec, n, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
        for (std::size_t j = lo; j < hi; ++j) {
          best_err[j] = std::min(
              best_err[j], ProjectionError(centered.ColData(j), centers.ColData(l), m, norm2[j]));
        }
      });
    }
  }

  AfclstResult result;
  result.assignment.assign(n, -1);
  result.projection_errors.assign(n, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment phase: the n × k distance computation fans out over
    // series; per-chunk change counts are summed afterwards (integer sum —
    // identical at any thread count).
    std::vector<int> chunk_changes(ExecNumChunks(n), 0);
    ParallelChunks(exec, n, [&](std::size_t c, std::size_t lo, std::size_t hi) {
      for (std::size_t j = lo; j < hi; ++j) {
        const double* s = centered.ColData(j);
        double best_err = std::numeric_limits<double>::infinity();
        int best_cluster = 0;
        for (std::size_t l = 0; l < k; ++l) {
          const double err = ProjectionError(s, centers.ColData(l), m, norm2[j]);
          if (err < best_err) {
            best_err = err;
            best_cluster = static_cast<int>(l);
          }
        }
        if (result.assignment[j] != best_cluster) {
          result.assignment[j] = best_cluster;
          ++chunk_changes[c];
        }
        result.projection_errors[j] = best_err;
      }
    });
    int changes = 0;
    for (const int c : chunk_changes) changes += c;

    // Convergence test (Algorithm 1, line 16): fewer than δ_min changes.
    if (changes <= options.min_changes && iter > 0) break;

    // Update phase: centre ℓ = dominant left singular vector of R_ℓ.
    // Empty-cluster re-seeds draw from the rng first, sequentially in
    // cluster order, so the random sequence never depends on scheduling;
    // the SVD-based updates then fan out over clusters.
    // Only quality-eligible members steer the SVD; a cluster whose members
    // are all low-quality keeps its current centre (it is not empty — its
    // assignment is still meaningful — so it must not be re-seeded).
    std::vector<std::vector<la::Vector>> members(k);
    std::vector<std::size_t> population(k, 0);
    for (std::size_t j = 0; j < n; ++j) {
      const auto l = static_cast<std::size_t>(result.assignment[j]);
      ++population[l];
      if (eligible[j]) members[l].push_back(centered.Col(j));
    }
    for (std::size_t l = 0; l < k; ++l) {
      if (population[l] == 0) {
        la::Vector c = centered.Col(seedable[rng.NextBounded(seedable.size())]);
        if (c.Normalize() == 0.0) c[0] = 1.0;
        centers.SetCol(l, c);
      }
    }
    AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
        exec, k, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
          for (std::size_t l = lo; l < hi; ++l) {
            if (members[l].empty()) continue;  // already re-seeded above
            const la::Matrix r_l = la::Matrix::FromColumns(members[l]);
            auto top = la::PowerIterationTopSingular(r_l, la::Vector());
            if (!top.ok()) return top.status();
            if (top->sigma > 0.0) {
              centers.SetCol(l, top->left);
            }
          }
          return Status::OK();
        }));
  }

  result.centers = std::move(centers);
  return result;
}

la::Matrix PivotPairMatrix(const ts::DataMatrix& data, const AfclstResult& clustering,
                           ts::SeriesId u, ts::SeriesId v) {
  AFFINITY_CHECK_LT(u, data.n());
  AFFINITY_CHECK_LT(v, data.n());
  const int cluster = clustering.assignment[v];
  la::Matrix out(data.m(), 2);
  const double* su = data.ColumnData(u);
  const double* r = clustering.centers.ColData(static_cast<std::size_t>(cluster));
  double* c0 = out.ColData(0);
  double* c1 = out.ColData(1);
  for (std::size_t i = 0; i < data.m(); ++i) {
    c0[i] = su[i];
    c1[i] = r[i];
  }
  return out;
}

}  // namespace affinity::core
