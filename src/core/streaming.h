#ifndef AFFINITY_CORE_STREAMING_H_
#define AFFINITY_CORE_STREAMING_H_

/// \file streaming.h
/// Windowed streaming deployment of AFFINITY (extension).
///
/// The paper motivates both "real-time and archival settings"; this wrapper
/// provides the real-time half: rows stream into the storage layer's
/// `data_matrix` table and the framework (AFCLST → SYMEX+ → SCAPE) is
/// refreshed over the trailing analysis window every `rebuild_interval`
/// rows. Two refresh policies are offered (`UpdateMode`):
///
///  * `kRebuild` — every refresh is a from-scratch parallel build of the
///    whole stack (the original behaviour);
///  * `kIncremental` — after the first full build, refreshes delta-update
///    every layer in place through `core/incremental` (DESIGN.md §8):
///    O(interval) ring-buffer accumulator updates per relationship instead
///    of O(window) refits, exact recomputation of all per-series /
///    per-pivot state, and in-place SCAPE re-keying. A drift monitor
///    escalates back to a full rebuild when the frozen clustering stops
///    describing the data.
///
/// Between refreshes, queries answer against the last snapshot — the
/// standard freshness/cost trade-off, made explicit by `snapshot_age()`.
/// Resident storage stays O(window): absorbed rows are reclaimed from the
/// table at segment granularity (`DataMatrixTable::CompactBefore`).
///
/// Refreshes run over one thread pool owned by the stream (sized by
/// `StreamingOptions::build.threads`) and created once at `Create` time,
/// so large-window refreshes fan out across cores instead of stalling
/// ingest on one, and no per-refresh pool setup cost is paid.

#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/framework.h"
#include "core/incremental.h"
#include "storage/table.h"
#include "ts/rolling.h"

namespace affinity::core {

/// Snapshot refresh policy.
enum class UpdateMode {
  kRebuild,      ///< full from-scratch build every refresh
  kIncremental,  ///< delta maintenance with drift-monitored escalation
};

/// Streaming configuration.
struct StreamingOptions {
  /// Trailing samples per refresh (the analysis window).
  std::size_t window = 256;
  /// Refresh the snapshot after this many appended rows (≥ 1).
  std::size_t rebuild_interval = 64;
  /// Refresh policy (see file docs).
  UpdateMode mode = UpdateMode::kRebuild;
  /// Tuning of the incremental path (kIncremental only).
  IncrementalOptions incremental;
  /// Build configuration for each full build.
  AffinityOptions build;
  /// Storage segment capacity; 0 derives one from the window so resident
  /// rows stay O(window) after compaction.
  std::size_t segment_capacity = 0;
};

/// Outcome of one Append call. `status` reports append/refresh failures;
/// `refreshed` distinguishes "a refresh ran (and succeeded)" from "no
/// refresh was due" — previously both returned a bare OK.
struct AppendResult {
  Status status = Status::OK();
  /// True when this append triggered a snapshot refresh that succeeded.
  bool refreshed = false;
  /// Path that served the refresh (meaningful when `refreshed`).
  UpdateMode mode = UpdateMode::kRebuild;
  /// True when this refresh escalated to a full rebuild — the incremental
  /// drift monitor tripped, or a maintenance error forced recovery by
  /// re-freezing the stack from the table.
  bool escalated = false;

  bool ok() const { return status.ok(); }
};

/// Ingest-and-query wrapper: append aligned rows, query the latest
/// framework snapshot.
class StreamingAffinity {
 public:
  /// Creates a stream over the named series.
  /// InvalidArgument for empty names, window < 2, or rebuild_interval < 1.
  static StatusOr<StreamingAffinity> Create(const std::vector<std::string>& names,
                                            const StreamingOptions& options);

  /// Appends one aligned row (one value per series). Triggers a refresh
  /// when the window is filled and `rebuild_interval` rows arrived since
  /// the last one; see AppendResult for how outcomes are reported.
  AppendResult Append(const std::vector<double>& row);

  /// True once at least one framework snapshot exists.
  bool ready() const { return framework_ != nullptr; }

  /// The current framework snapshot (nullptr before the first build).
  const Affinity* framework() const { return framework_.get(); }

  /// Rows ingested in total.
  std::size_t rows_ingested() const { return rows_; }

  /// Rows appended since the current snapshot was refreshed (freshness).
  std::size_t snapshot_age() const { return ready() ? rows_ - snapshot_row_ : 0; }

  /// Number of full from-scratch builds performed (including the first
  /// build and incremental escalations).
  std::size_t rebuild_count() const { return rebuilds_; }

  /// Number of incremental refreshes performed.
  std::size_t refresh_count() const { return refreshes_; }

  /// Maintenance accounting of the incremental path (zeros in kRebuild
  /// mode or before the first build).
  const MaintenanceProfile& maintenance() const { return maintenance_; }

  /// Per-series rolling moments over the trailing window, maintained in
  /// O(1) per append (`ts/rolling`) — a between-refresh freshness signal:
  /// compare against the snapshot's `model().series_stats()` to see how
  /// far the live window has drifted from the answered one.
  const std::vector<ts::RollingStats>& rolling_stats() const { return rolling_; }

  /// Forces a full rebuild now (FailedPrecondition before `window` rows
  /// exist). In kIncremental mode this also re-freezes the maintenance
  /// structure (clustering, pivots, baselines).
  Status Rebuild();

  /// The underlying storage table (for inspection / checkpointing). Only
  /// the trailing O(window) rows stay resident (CompactBefore).
  const storage::DataMatrixTable& table() const { return table_; }

  /// The execution context refreshes (and snapshot queries) run over.
  ExecContext exec() const { return ExecContext{pool_.get()}; }

 private:
  StreamingAffinity(storage::DataMatrixTable table, StreamingOptions options,
                    std::unique_ptr<ThreadPool> pool)
      : pool_(std::move(pool)), table_(std::move(table)), options_(options) {}

  /// Runs one refresh (incremental or full, per options/state); called by
  /// Append when the interval elapses.
  AppendResult Refresh();

  // Declared first so it outlives the framework snapshot whose engine
  // holds an ExecContext pointing at it (members destroy in reverse).
  std::unique_ptr<ThreadPool> pool_;
  storage::DataMatrixTable table_;
  StreamingOptions options_;
  std::unique_ptr<Affinity> framework_;
  std::unique_ptr<IncrementalMaintainer> maintainer_;
  MaintenanceProfile maintenance_;
  std::vector<ts::RollingStats> rolling_;
  std::vector<std::vector<double>> pending_;  ///< rows since the last refresh
  std::size_t rows_ = 0;
  std::size_t snapshot_row_ = 0;
  std::size_t rows_since_refresh_ = 0;
  std::size_t rebuilds_ = 0;
  std::size_t refreshes_ = 0;
};

}  // namespace affinity::core

#endif  // AFFINITY_CORE_STREAMING_H_
