#ifndef AFFINITY_CORE_STREAMING_H_
#define AFFINITY_CORE_STREAMING_H_

/// \file streaming.h
/// Windowed streaming deployment of AFFINITY (extension).
///
/// The paper motivates both "real-time and archival settings"; this wrapper
/// provides the real-time half: rows stream into the storage layer's
/// `data_matrix` table, and the framework (AFCLST → SYMEX+ → SCAPE) is
/// rebuilt over the trailing analysis window every `rebuild_interval` rows.
/// Between rebuilds, queries answer against the last snapshot — the
/// standard freshness/cost trade-off, made explicit by `snapshot_age()`.
///
/// Rebuilds run over one thread pool owned by the stream (sized by
/// `StreamingOptions::build.threads`) and created once at `Create` time,
/// so large-window rebuilds fan out across cores instead of stalling
/// ingest on one, and no per-rebuild pool setup cost is paid.

#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/framework.h"
#include "storage/table.h"
#include "ts/rolling.h"

namespace affinity::core {

/// Streaming configuration.
struct StreamingOptions {
  /// Trailing samples per rebuild (the analysis window).
  std::size_t window = 256;
  /// Rebuild the framework after this many appended rows (≥ 1).
  std::size_t rebuild_interval = 64;
  /// Build configuration for each snapshot.
  AffinityOptions build;
};

/// Ingest-and-query wrapper: append aligned rows, query the latest
/// framework snapshot.
class StreamingAffinity {
 public:
  /// Creates a stream over the named series.
  /// InvalidArgument for empty names, window < 2, or rebuild_interval < 1.
  static StatusOr<StreamingAffinity> Create(const std::vector<std::string>& names,
                                            const StreamingOptions& options);

  /// Appends one aligned row (one value per series). Triggers a rebuild
  /// when the window is filled and `rebuild_interval` rows arrived since
  /// the last one. Returns the rebuild's status when one runs.
  Status Append(const std::vector<double>& row);

  /// True once at least one framework snapshot exists.
  bool ready() const { return framework_ != nullptr; }

  /// The current framework snapshot (nullptr before the first rebuild).
  const Affinity* framework() const { return framework_.get(); }

  /// Rows ingested in total.
  std::size_t rows_ingested() const { return rows_; }

  /// Rows appended since the current snapshot was built (freshness).
  std::size_t snapshot_age() const { return ready() ? rows_ - snapshot_row_ : 0; }

  /// Number of rebuilds performed.
  std::size_t rebuild_count() const { return rebuilds_; }

  /// Forces a rebuild now (FailedPrecondition before `window` rows exist).
  Status Rebuild();

  /// The underlying storage table (for inspection / checkpointing).
  const storage::DataMatrixTable& table() const { return table_; }

  /// The execution context rebuilds (and snapshot queries) run over.
  ExecContext exec() const { return ExecContext{pool_.get()}; }

 private:
  StreamingAffinity(storage::DataMatrixTable table, StreamingOptions options,
                    std::unique_ptr<ThreadPool> pool)
      : pool_(std::move(pool)), table_(std::move(table)), options_(options) {}

  // Declared first so it outlives the framework snapshot whose engine
  // holds an ExecContext pointing at it (members destroy in reverse).
  std::unique_ptr<ThreadPool> pool_;
  storage::DataMatrixTable table_;
  StreamingOptions options_;
  std::unique_ptr<Affinity> framework_;
  std::size_t rows_ = 0;
  std::size_t snapshot_row_ = 0;
  std::size_t rows_since_rebuild_ = 0;
  std::size_t rebuilds_ = 0;
};

}  // namespace affinity::core

#endif  // AFFINITY_CORE_STREAMING_H_
