#ifndef AFFINITY_CORE_STREAMING_H_
#define AFFINITY_CORE_STREAMING_H_

/// \file streaming.h
/// Windowed streaming deployment of AFFINITY (extension).
///
/// The paper motivates both "real-time and archival settings"; this wrapper
/// provides the real-time half: rows stream into the storage layer's
/// `data_matrix` table and the framework (AFCLST → SYMEX+ → SCAPE) is
/// refreshed over the trailing analysis window every `rebuild_interval`
/// rows. Two refresh policies are offered (`UpdateMode`):
///
///  * `kRebuild` — every refresh is a from-scratch parallel build of the
///    whole stack (the original behaviour);
///  * `kIncremental` — after the first full build, refreshes delta-update
///    every layer in place through `core/incremental` (DESIGN.md §8):
///    O(interval) ring-buffer accumulator updates per relationship instead
///    of O(window) refits, exact recomputation of all per-series /
///    per-pivot state, and in-place SCAPE re-keying. A drift monitor
///    escalates back to a full rebuild when the frozen clustering stops
///    describing the data.
///
/// Between refreshes, queries answer against the last snapshot — the
/// standard freshness/cost trade-off, made explicit by `snapshot_age()`
/// and bounded on demand by `FreshnessOptions::max_staleness`: when the
/// snapshot is older than the bound, answers are *blended* — the snapshot
/// supplies the scale-free pair structure (its correlations), the live
/// per-series rolling moments (maintained O(1) per append) supply the
/// current marginals (DESIGN.md §9).
///
/// A `StreamingAffinity` is one model instance over one series group. The
/// sharded service (src/shard) runs N of them over disjoint groups behind
/// a router; the single-instance deployment is exactly the N = 1 case of
/// that router, so this class is also its per-shard engine: construction
/// variants exist for a router-owned pool (`CreateWith`) and for restoring
/// a shard from a manifest checkpoint (`Restore`).
///
/// Resident storage stays O(window): absorbed rows are reclaimed from the
/// table at segment granularity (`DataMatrixTable::CompactBefore`). The
/// append hot path is allocation-free in steady state: rolling moments
/// update in place and pending rows are copied into a preallocated pool
/// whose capacity never shrinks (verified by a bench_micro counter).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/framework.h"
#include "core/incremental.h"
#include "serve/serve_query.h"
#include "serve/serving_snapshot.h"
#include "storage/table.h"
#include "ts/ingest.h"
#include "ts/rolling.h"

namespace affinity::core {

/// Snapshot refresh policy.
enum class UpdateMode {
  kRebuild,      ///< full from-scratch build every refresh
  kIncremental,  ///< delta maintenance with drift-monitored escalation
};

/// Streaming configuration.
struct StreamingOptions {
  /// Trailing samples per refresh (the analysis window).
  std::size_t window = 256;
  /// Refresh the snapshot after this many appended rows (≥ 1).
  std::size_t rebuild_interval = 64;
  /// Refresh policy (see file docs).
  UpdateMode mode = UpdateMode::kRebuild;
  /// Tuning of the incremental path (kIncremental only).
  IncrementalOptions incremental;
  /// Build configuration for each full build.
  AffinityOptions build;
  /// Storage segment capacity; 0 derives one from the window so resident
  /// rows stay O(window) after compaction.
  std::size_t segment_capacity = 0;
  /// Historical serving epochs the publisher pins beyond the current one
  /// (DESIGN.md §11): `serving_epoch(generation)` can recover any of the
  /// last `serving_history` superseded epochs without copying. 0 keeps
  /// only the current epoch (previous behaviour).
  std::size_t serving_history = 0;
};

/// Validates a streaming configuration for `series_count` series — the
/// single Status surface behind `StreamingAffinity::Create` and the shard
/// router's per-shard construction (bad configs report instead of
/// crashing). Checks series/window/interval bounds, incremental tuning,
/// and basic window-size sanity (`window ≤ 2^24`).
Status ValidateStreamingOptions(const StreamingOptions& options, std::size_t series_count);

/// Outcome of one Append call. `status` reports append/refresh failures;
/// `refreshed` distinguishes "a refresh ran (and succeeded)" from "no
/// refresh was due" — previously both returned a bare OK.
struct AppendResult {
  Status status = Status::OK();
  /// True when this append triggered a snapshot refresh that succeeded.
  bool refreshed = false;
  /// Path that served the refresh (meaningful when `refreshed`).
  UpdateMode mode = UpdateMode::kRebuild;
  /// True when this refresh escalated to a full rebuild — the incremental
  /// drift monitor tripped, or a maintenance error forced recovery by
  /// re-freezing the stack from the table.
  bool escalated = false;

  bool ok() const { return status.ok(); }
};

/// Freshness-bounded query options (DESIGN.md §9).
struct FreshnessOptions {
  /// Strategy per shard/instance; kAuto consults the planner.
  QueryMethod method = QueryMethod::kAuto;
  /// Maximum acceptable snapshot age, in appended rows; 0 = no bound
  /// (always serve the snapshot). When the snapshot is older, answers are
  /// blended: pair measures keep the snapshot's scale-free structure (its
  /// correlation) and take scale from the live rolling moments; means are
  /// served live. Median/mode have no O(1) live form and stay
  /// snapshot-aged even under a bound (documented limitation).
  std::size_t max_staleness = 0;
};

/// Freshness report attached to a streaming answer: how old the snapshot
/// that structured the answer is, and whether the staleness bound forced
/// the live-marginal blend.
struct FreshnessReport {
  std::size_t snapshot_age = 0;
  bool blended = false;
};

/// Live-marginal blend of one pair measure (DESIGN.md §9): the snapshot
/// supplies the scale-free structure `snapshot_corr`, the rolling windows
/// of the two series supply the current marginals (mean, variance, energy,
/// count). `snapshot_value` of the requested measure is the fallback when
/// the blend degenerates (zero live energy). Correlation itself is
/// scale-free, so its blend is the snapshot value. The windows must be
/// aligned (same count).
double BlendPairMeasure(Measure measure, double snapshot_corr, double snapshot_value,
                        const ts::RollingStats& u, const ts::RollingStats& v);

/// Ingest-and-query wrapper: append aligned rows, query the latest
/// framework snapshot.
class StreamingAffinity {
 public:
  /// Creates a stream over the named series with its own thread pool
  /// (sized by `options.build.threads`). InvalidArgument for invalid
  /// options (see ValidateStreamingOptions) or empty/duplicate names.
  static StatusOr<StreamingAffinity> Create(const std::vector<std::string>& names,
                                            const StreamingOptions& options);

  /// As Create, but refreshes execute over a caller-supplied context — the
  /// shard router shares one pool across all its shards this way. The pool
  /// behind `exec` must outlive the stream; `options.build.threads` is
  /// ignored.
  static StatusOr<StreamingAffinity> CreateWith(const std::vector<std::string>& names,
                                                const StreamingOptions& options,
                                                const ExecContext& exec);

  /// Restores a ready stream from a checkpointed model (serialize.h): the
  /// model's data matrix becomes the resident window (its m() must equal
  /// `options.window`), the framework is reassembled around it
  /// (`Affinity::FromModelWith`), rolling moments are replayed, and — in
  /// kIncremental mode — a fresh maintainer is frozen from the restored
  /// stack. Logical row numbering restarts at `window`.
  static StatusOr<StreamingAffinity> Restore(AffinityModel model, const StreamingOptions& options,
                                             const ExecContext& exec);

  /// Appends one aligned row (one value per series). Non-finite values are
  /// rejected with InvalidArgument before any state mutates — a NaN must
  /// never reach the moment accumulators (use the dirty-ingestion path,
  /// ts::StreamAligner → AppendMasked, for streams that carry them).
  /// Triggers a refresh when the window is filled and `rebuild_interval`
  /// rows arrived since the last one; see AppendResult for how outcomes
  /// are reported.
  AppendResult Append(const std::vector<double>& row);

  /// Appends one aligned row from the dirty-ingestion path (DESIGN.md
  /// §12): `values` is the repaired dense row (all finite — the aligner
  /// carries each series' last known value through fills and gaps),
  /// `valid[j]` = 0 flags an explicit gap beyond the fill horizon,
  /// `filled[j]` = 1 marks a forward-filled cell. The masks feed the
  /// per-series quality surface; the dense engine sees only the repaired
  /// values. Mask sizes must match the row (InvalidArgument otherwise).
  AppendResult AppendMasked(const std::vector<double>& values,
                            const std::vector<std::uint8_t>& valid,
                            const std::vector<std::uint8_t>& filled);

  /// Convenience overload for the aligner's emission type.
  AppendResult AppendMasked(const ts::AlignedRow& row) {
    return AppendMasked(row.values, row.valid, row.filled);
  }

  /// True once at least one framework snapshot exists.
  bool ready() const { return framework_ != nullptr; }

  /// The current framework snapshot (nullptr before the first build).
  const Affinity* framework() const { return framework_.get(); }

  /// Rows ingested in total.
  std::size_t rows_ingested() const { return rows_; }

  /// Rows appended since the current snapshot was refreshed (freshness).
  std::size_t snapshot_age() const { return ready() ? rows_ - snapshot_row_ : 0; }

  /// Number of full from-scratch builds performed (including the first
  /// build and incremental escalations).
  std::size_t rebuild_count() const { return rebuilds_; }

  /// Number of incremental refreshes performed.
  std::size_t refresh_count() const { return refreshes_; }

  /// Maintenance accounting of the incremental path (zeros in kRebuild
  /// mode or before the first build), plus serve-path publication and
  /// fallback counters. Returned by value: the fallback counter is
  /// maintained by concurrent readers and folded in at call time.
  MaintenanceProfile maintenance() const {
    MaintenanceProfile p = maintenance_;
    if (serve_fallbacks_ != nullptr) {
      p.serve_fallbacks += serve_fallbacks_->load(std::memory_order_relaxed);
    }
    return p;
  }

  /// Per-series rolling moments over the trailing window, maintained in
  /// O(1) per append (`ts/rolling`) — the live marginals the freshness
  /// blend draws on, and a drift signal against the snapshot's
  /// `model().series_stats()`.
  const std::vector<ts::RollingStats>& rolling_stats() const { return rolling_; }

  /// The live per-series data-quality tracker (DESIGN.md §12): a ring
  /// mirror of the window's validity/fill masks, updated every append
  /// (plain appends count as fully observed rows).
  const ts::QualityTracker& quality() const { return *quality_; }

  /// Quality of one series over the current window.
  ts::SeriesQuality series_quality(ts::SeriesId v) const { return quality_->Quality(v); }

  /// The composite quality scores the snapshot engine answers
  /// `min_quality` predicates against — refreshed at every publication
  /// point, so the surface is as-of the snapshot the engine serves (the
  /// same freshness contract as every other snapshot answer).
  const std::vector<double>& quality_scores() const { return quality_scores_; }

  /// Arms the incremental maintainer's fault injection (recovery tests):
  /// the next `count` refreshes fail and must heal through escalation.
  /// FailedPrecondition when no maintainer exists (kRebuild mode or before
  /// the first build).
  Status InjectMaintenanceFailureForTesting(std::size_t count) {
    if (maintainer_ == nullptr) {
      return Status::FailedPrecondition("no incremental maintainer to inject failures into");
    }
    maintainer_->InjectFailuresForTesting(count);
    return Status::OK();
  }

  // --- Freshness-bounded queries (DESIGN.md §9) ---------------------------
  //
  // Each forwards to the snapshot engine when the snapshot satisfies the
  // staleness bound, and otherwise answers with the live-marginal blend
  // (a full sweep — the SCAPE index orders snapshot values, not blended
  // ones). All are FailedPrecondition before the first build. `report`,
  // when non-null, receives the snapshot age and whether blending ran.

  StatusOr<MecResponse> Mec(const MecRequest& request, const FreshnessOptions& options = {},
                            FreshnessReport* report = nullptr) const;
  StatusOr<SelectionResult> Met(const MetRequest& request, const FreshnessOptions& options = {},
                                FreshnessReport* report = nullptr) const;
  StatusOr<SelectionResult> Mer(const MerRequest& request, const FreshnessOptions& options = {},
                                FreshnessReport* report = nullptr) const;
  StatusOr<TopKResult> TopK(const TopKRequest& request, const FreshnessOptions& options = {},
                            FreshnessReport* report = nullptr) const;

  /// The blended value of one pair (u ≠ v) or series measure — the unit
  /// the blended sweeps and the shard router's gather are built from.
  StatusOr<double> BlendedPairValue(Measure measure, ts::SeriesId u, ts::SeriesId v) const;
  StatusOr<double> BlendedSeriesValue(Measure measure, ts::SeriesId v) const;

  /// Forces a full rebuild now (FailedPrecondition before `window` rows
  /// exist). In kIncremental mode this also re-freezes the maintenance
  /// structure (clustering, pivots, baselines).
  Status Rebuild();

  /// The underlying storage table (for inspection / checkpointing). Only
  /// the trailing O(window) rows stay resident (CompactBefore).
  const storage::DataMatrixTable& table() const { return table_; }

  /// The streaming configuration the stream was created with.
  const StreamingOptions& options() const { return options_; }

  /// The execution context refreshes (and snapshot queries) run over.
  const ExecContext& exec() const { return exec_; }

  /// The current read-optimized serving replica (DESIGN.md §11), published
  /// by the last successful refresh/rebuild; nullptr before the first
  /// build. The returned shared_ptr pins the epoch: any number of threads
  /// may hold handles and run serve::SnapshotMec/Met/Mer/TopK against them
  /// while this stream keeps appending and refreshing — readers never
  /// block on maintenance, and an epoch is reclaimed when the last handle
  /// drops. Answers are bitwise identical to the facade's non-blended
  /// queries at the same epoch.
  std::shared_ptr<const serve::ServingSnapshot> serving() const {
    return publisher_ != nullptr ? publisher_->Acquire() : nullptr;
  }

  /// A specific epoch by generation: the current one, or any superseded
  /// epoch still pinned by the publisher's history ring
  /// (`StreamingOptions::serving_history`). nullptr when that generation
  /// was never published or has been evicted.
  std::shared_ptr<const serve::ServingSnapshot> serving_epoch(std::uint64_t generation) const {
    return publisher_ != nullptr ? publisher_->AcquireEpoch(generation) : nullptr;
  }

  /// Flattens the live stack from scratch into a snapshot stamped with the
  /// *current* generation and snapshot row — the oracle the delta
  /// publication path must match bitwise (tested per epoch). nullptr
  /// before the first build. Not published; purely an inspection surface.
  std::shared_ptr<const serve::ServingSnapshot> BuildColdSnapshot() const;

 private:
  StreamingAffinity(storage::DataMatrixTable table, StreamingOptions options,
                    std::unique_ptr<ThreadPool> pool, ExecContext exec)
      : pool_(std::move(pool)), exec_(exec), table_(std::move(table)), options_(options) {}

  /// Shared tail of every construction path: rolling windows, the quality
  /// tracker, and the preallocated pending-row pool.
  void InitBuffers(std::size_t series_count);

  /// Common body of Append/AppendMasked; null masks mean fully observed.
  AppendResult AppendRow(const std::vector<double>& values, const std::uint8_t* valid,
                         const std::uint8_t* filled);

  /// Copies the tracker's composite scores into `quality_scores_` (the
  /// stable vector the engine's quality surface points at).
  void RefreshQualityScores();

  /// Runs one refresh (incremental or full, per options/state); called by
  /// Append when the interval elapses.
  AppendResult Refresh();

  /// True when `options` demands fresher answers than the snapshot offers.
  bool NeedsBlend(const FreshnessOptions& options) const {
    return options.max_staleness > 0 && snapshot_age() > options.max_staleness;
  }

  /// Shared prologue of the four freshness query paths: checks readiness
  /// and *always* writes `report` (zeroed on the readiness error, the
  /// age/blend verdict otherwise) before any per-kind logic can return —
  /// no exit leaves the caller's report stale. Returns whether the
  /// staleness bound forces the blended sweep.
  StatusOr<bool> PrepareFreshness(const FreshnessOptions& options,
                                  FreshnessReport* report) const;

  /// Blended full-sweep selection / top-k / MEC (see file docs).
  StatusOr<SelectionResult> BlendedSelect(Measure measure, bool (*keep)(double, double, double),
                                          double a, double b) const;
  StatusOr<TopKResult> BlendedTopK(const TopKRequest& request) const;
  StatusOr<MecResponse> BlendedMec(const MecRequest& request) const;

  /// The ExecutedPlan stamped on blended answers.
  ExecutedPlan BlendPlan() const;

  /// Flattens the just-refreshed stack into a new serving epoch and
  /// publishes it (lock-free swap). Called at every publication point —
  /// incremental refresh success, full rebuild, restore — i.e. exactly
  /// when the live structures change, so a published snapshot always
  /// equals the live structures until the next publication. With
  /// `try_delta` (and a maintainer-recorded dirty-range log that covers
  /// exactly the moves since the prior epoch) the flatten goes through
  /// SnapshotBuilder::BuildDelta — COW window, shared/spliced SCAPE runs —
  /// and falls back to the full Build when any precondition fails; the
  /// published bits are identical either way.
  void PublishServingSnapshot(bool try_delta = false);

  // Declared first so it outlives the framework snapshot whose engine
  // holds an ExecContext pointing at it (members destroy in reverse).
  std::unique_ptr<ThreadPool> pool_;  ///< set when Create sized its own
  ExecContext exec_;
  storage::DataMatrixTable table_;
  StreamingOptions options_;
  std::unique_ptr<Affinity> framework_;
  std::unique_ptr<IncrementalMaintainer> maintainer_;
  MaintenanceProfile maintenance_;
  std::vector<ts::RollingStats> rolling_;
  /// Ring mirror of the window's validity/fill masks (DESIGN.md §12);
  /// heap-held so the stream stays movable with a stable tracker address.
  std::unique_ptr<ts::QualityTracker> quality_;
  /// Composite scores attached to the snapshot engine (AttachQuality):
  /// refreshed at publication points, stable address across refreshes.
  std::vector<double> quality_scores_;
  /// Preallocated pool of rows awaiting the next incremental refresh:
  /// `pending_[0..pending_used_)` are live; capacity (one interval of rows)
  /// never shrinks, so steady-state appends allocate nothing.
  std::vector<std::vector<double>> pending_;
  std::size_t pending_used_ = 0;
  std::size_t rows_ = 0;
  std::size_t snapshot_row_ = 0;
  std::size_t rows_since_refresh_ = 0;
  std::size_t rebuilds_ = 0;
  std::size_t refreshes_ = 0;
  /// Epoch publication point for lock-free serving; allocated lazily at
  /// the first publication (a stream that is never built publishes
  /// nothing). unique_ptr keeps StreamingAffinity movable — the atomic
  /// inside EpochPublisher is not.
  ///
  /// Concurrency contract (DESIGN.md §13): StreamingAffinity is
  /// single-writer — AppendRow/Rebuild/Load run on one thread. The only
  /// state shared with concurrent readers is this publisher (internally
  /// synchronized; see serve/serving_snapshot.h) and `serve_fallbacks_`
  /// below (an atomic counter). Every other member, including
  /// `serving_scratch_` and `serving_generation_`, is writer-private.
  std::unique_ptr<serve::EpochPublisher<serve::ServingSnapshot>> publisher_;
  std::uint64_t serving_generation_ = 0;
  /// The last *retired* epoch with no surviving readers, held for memory
  /// recycling: the next delta build rewrites its tables in place instead
  /// of freeing them and allocating fresh ones (the dominant fixed cost of
  /// an interval-1 publication). Never reachable by readers — recycled
  /// only when the publisher confirmed this was the final reference.
  std::shared_ptr<serve::ServingSnapshot> serving_scratch_;
  /// Dirty ξ-range log the maintainer's SCAPE refresh writes and the delta
  /// publication path consumes (one refresh of provenance at a time).
  /// Heap-held: the maintainer keeps a pointer to it, and the stream is
  /// moved out of its factory functions.
  std::unique_ptr<ScapeDeltaLog> scape_delta_log_ = std::make_unique<ScapeDeltaLog>();
  /// True while the currently published epoch equals the live structures
  /// (set by every successful publish, cleared the moment maintenance
  /// mutates them). The next refresh may publish via the delta path only
  /// when this held *before* its Advance — then `scape_delta_log_`
  /// describes exactly the moves between the published epoch and the live
  /// trees. An unpublished refresh (RefreshWf failure) leaves it false, so
  /// the following epoch falls back to a full flatten instead of splicing
  /// against a stale prior.
  bool delta_publish_valid_ = false;
  /// kUnavailable live-engine fallbacks taken by concurrent snapshot
  /// readers; heap-held so the stream stays movable despite the atomic.
  std::unique_ptr<std::atomic<std::size_t>> serve_fallbacks_ =
      std::make_unique<std::atomic<std::size_t>>(0);
};

}  // namespace affinity::core

#endif  // AFFINITY_CORE_STREAMING_H_
