#ifndef AFFINITY_CORE_SERIALIZE_H_
#define AFFINITY_CORE_SERIALIZE_H_

/// \file serialize.h
/// Binary persistence for the AffinityModel (extension).
///
/// SYMEX over stock-data fits ~500k relationships; persisting the model
/// lets a deployment build once and answer queries from a cold start in
/// milliseconds. The format is a versioned little-structured binary dump:
///
///   magic "AFFM" | u32 version | data matrix | clustering | affHash |
///   pivotHash | per-series stats | series-level relationships |
///   centre L-measures | build stats
///
/// The SCAPE index is *not* serialized: rebuilding it from a loaded model
/// is linear and fast (Fig. 14), and that keeps the format free of B-tree
/// layout details. Byte order is native (documented non-goal: moving model
/// files between endiannesses).
///
/// The stream-level entry points (`WriteModelStream` / `ReadModelStream`)
/// expose the same framed payload over an open stream — the unit a shard
/// manifest (src/shard) embeds once per shard, so a whole sharded
/// deployment round-trips through one file.

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "core/symex.h"

namespace affinity::core {

/// Current serialization format version. v2 added the data matrix's
/// block-grid anchor (ts::DataMatrix::anchor_row, DESIGN.md §10) so a
/// restored window keeps its place on the absolute summation grid; v1
/// payloads still load, defaulting the anchor to 0 (the historic order
/// they were written under).
inline constexpr std::uint32_t kModelFormatVersion = 2;
inline constexpr std::uint32_t kMinModelFormatVersion = 1;

/// Writes `model` to `path` (overwrites). IoError on filesystem failures.
Status SaveModel(const AffinityModel& model, const std::string& path);

/// Reads a model previously written by SaveModel.
/// IoError when unreadable; InvalidArgument on bad magic, unsupported
/// version, or a truncated/corrupt payload.
StatusOr<AffinityModel> LoadModel(const std::string& path);

/// Writes one framed model payload (magic + version + body) to an open
/// binary stream, leaving the stream positioned after it — composable:
/// a manifest writes its own header, then N of these back to back.
/// IoError when the stream fails.
Status WriteModelStream(const AffinityModel& model, std::ostream& out);

/// Reads one framed model payload from an open binary stream (the inverse
/// of WriteModelStream), leaving the stream positioned after it.
StatusOr<AffinityModel> ReadModelStream(std::istream& in);

}  // namespace affinity::core

#endif  // AFFINITY_CORE_SERIALIZE_H_
