#ifndef AFFINITY_CORE_SERIALIZE_H_
#define AFFINITY_CORE_SERIALIZE_H_

/// \file serialize.h
/// Binary persistence for the AffinityModel (extension).
///
/// SYMEX over stock-data fits ~500k relationships; persisting the model
/// lets a deployment build once and answer queries from a cold start in
/// milliseconds. The format is a versioned little-structured binary dump:
///
///   magic "AFFM" | u32 version | data matrix | clustering | affHash |
///   pivotHash | per-series stats | series-level relationships |
///   centre L-measures | build stats
///
/// The SCAPE index is *not* serialized: rebuilding it from a loaded model
/// is linear and fast (Fig. 14), and that keeps the format free of B-tree
/// layout details. Byte order is native (documented non-goal: moving model
/// files between endiannesses).

#include <string>

#include "common/status.h"
#include "core/symex.h"

namespace affinity::core {

/// Current serialization format version.
inline constexpr std::uint32_t kModelFormatVersion = 1;

/// Writes `model` to `path` (overwrites). IoError on filesystem failures.
Status SaveModel(const AffinityModel& model, const std::string& path);

/// Reads a model previously written by SaveModel.
/// IoError when unreadable; InvalidArgument on bad magic, unsupported
/// version, or a truncated/corrupt payload.
StatusOr<AffinityModel> LoadModel(const std::string& path);

}  // namespace affinity::core

#endif  // AFFINITY_CORE_SERIALIZE_H_
