#include "core/incremental.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/stopwatch.h"
#include "la/solve.h"
#include "ts/stats.h"

namespace affinity::core {

namespace {

constexpr double kTiny = 1e-300;

/// Removes one occurrence of `evicted` from the sorted window [col, col+m)
/// and inserts `added`, shifting only the span between the two positions.
void SortedReplace(double* col, std::size_t m, double evicted, double added) {
  double* end = col + m;
  double* out = std::lower_bound(col, end, evicted);  // exact match exists
  double* in = std::upper_bound(col, end, added);
  if (in > out + 1) {
    std::memmove(out, out + 1, static_cast<std::size_t>(in - out - 1) * sizeof(double));
    in[-1] = added;
  } else if (in < out) {
    std::memmove(in + 1, in, static_cast<std::size_t>(out - in) * sizeof(double));
    *in = added;
  } else {
    *out = added;
  }
}

}  // namespace

StatusOr<IncrementalMaintainer> IncrementalMaintainer::Create(AffinityModel* model,
                                                              ScapeIndex* scape,
                                                              const IncrementalOptions& options,
                                                              const ExecContext& exec) {
  if (model == nullptr) {
    return Status::InvalidArgument("incremental maintenance requires a model");
  }
  if (options.exact_refit_period < 1) {
    return Status::InvalidArgument("exact_refit_period must be >= 1");
  }
  IncrementalMaintainer mt;
  mt.model_ = model;
  mt.scape_ = scape;
  mt.options_ = options;
  mt.window_ = model->data().m();
  mt.n_ = model->data().n();
  const ts::DataMatrix& data = model->data();
  const std::size_t m = mt.window_;

  // Build-window means, frozen so the centre extension keeps centering new
  // samples the way AFCLST centered the build window.
  mt.frozen_means_.resize(mt.n_);
  for (std::size_t j = 0; j < mt.n_; ++j) {
    mt.frozen_means_[j] = model->series_stats(static_cast<ts::SeriesId>(j)).mean;
  }

  // Centre-extension weights: each centre is the dominant left singular
  // vector of its centered member matrix, hence an exact linear
  // combination of the centered member columns — recover the combination
  // by least squares so the centre evaluates on rows AFCLST never saw.
  const AfclstResult& clustering = model->clustering_;
  const std::size_t k = clustering.k();
  std::vector<std::vector<ts::SeriesId>> members(k);
  for (std::size_t v = 0; v < mt.n_; ++v) {
    members[static_cast<std::size_t>(clustering.assignment[v])].push_back(
        static_cast<ts::SeriesId>(v));
  }
  mt.center_weights_.resize(k);
  for (std::size_t l = 0; l < k; ++l) {
    if (members[l].empty()) continue;  // empty cluster: centre extends as 0
    la::Matrix centered(m, members[l].size());
    for (std::size_t idx = 0; idx < members[l].size(); ++idx) {
      const ts::SeriesId v = members[l][idx];
      const double* s = data.ColumnData(v);
      const double mean = mt.frozen_means_[v];
      double* dst = centered.ColData(idx);
      for (std::size_t i = 0; i < m; ++i) dst[i] = s[i] - mean;
    }
    la::Matrix target(m, 1);
    const double* r = clustering.centers.ColData(l);
    double* dst = target.ColData(0);
    for (std::size_t i = 0; i < m; ++i) dst[i] = r[i];
    auto beta = la::SolveLeastSquares(centered, target);
    if (!beta.ok()) {
      // Collinear members make the combination ambiguous; leave the
      // extension at 0 and let the drift monitor escalate if it matters.
      continue;
    }
    mt.center_weights_[l].reserve(members[l].size());
    for (std::size_t idx = 0; idx < members[l].size(); ++idx) {
      mt.center_weights_[l].emplace_back(members[l][idx], (*beta)(idx, 0));
    }
  }

  // Sorted views of every window column (series, then centres), kept live
  // by evict/insert shifts so refreshes never re-select medians.
  mt.sorted_cols_ = la::Matrix(m, mt.n_ + k);
  for (std::size_t c = 0; c < mt.n_ + k; ++c) {
    const double* src = c < mt.n_ ? data.ColumnData(static_cast<ts::SeriesId>(c))
                                  : clustering.centers.ColData(c - mt.n_);
    double* dst = mt.sorted_cols_.ColData(c);
    std::copy(src, src + m, dst);
    std::sort(dst, dst + m);
  }

  // Pivot and relationship slots, in ascending key order — canonical
  // regardless of hash-table layout, so chunk decomposition over the
  // slots is identical across processes too. The pointed-at hash nodes
  // are stable under the maintenance path, which never inserts or
  // erases structure.
  std::vector<std::pair<std::uint64_t, PivotHashEntry*>> pivot_items;
  pivot_items.reserve(model->pivot_hash_.size());
  // affinity-lint: allow(unordered-iter): collect-then-sort — slot order fixed by the sort below
  for (auto& [key, entry] : model->pivot_hash_) pivot_items.emplace_back(key, &entry);
  std::sort(pivot_items.begin(), pivot_items.end());
  std::unordered_map<std::uint64_t, std::size_t> pivot_index;
  pivot_index.reserve(model->pivot_hash_.size());
  mt.pivot_slots_.reserve(model->pivot_hash_.size());
  for (const auto& [key, entry] : pivot_items) {
    pivot_index.emplace(key, mt.pivot_slots_.size());
    PivotSlot ps;
    ps.entry = entry;
    mt.pivot_slots_.push_back(ps);
  }
  std::vector<std::pair<std::uint64_t, AffineRecord*>> rel_items;
  rel_items.reserve(model->aff_hash_.size());
  // affinity-lint: allow(unordered-iter): collect-then-sort — slot order fixed by the sort below
  for (auto& [key, rec] : model->aff_hash_) rel_items.emplace_back(key, &rec);
  std::sort(rel_items.begin(), rel_items.end());
  mt.slots_.reserve(model->aff_hash_.size());
  for (const auto& [key, rec] : rel_items) {
    PairSlot s;
    s.e = ts::SequencePair(static_cast<ts::SeriesId>(key >> 32),
                           static_cast<ts::SeriesId>(key & 0xffffffffULL));
    s.rec = rec;
    const auto it = pivot_index.find(rec->pivot.Key());
    if (it == pivot_index.end()) {
      return Status::Internal("relationship references an unknown pivot");
    }
    s.pivot_slot = it->second;
    mt.slots_.push_back(s);
  }

  // Materialize every accumulator exactly and capture the drift-monitor
  // baseline. Re-solving here reproduces the SYMEX+ fits bit for bit
  // (shared kernels, identical accumulation order).
  std::size_t refits = 0;
  AFFINITY_RETURN_IF_ERROR(mt.SolveRelationships(kRefitAll, exec, &refits));
  mt.profile_.baseline_mean_residual = mt.profile_.mean_relative_residual;
  return mt;
}

void IncrementalMaintainer::SlotColumns(const PairSlot& s, const double** c1, const double** c2,
                                        const double** t) const {
  const PivotPair& pivot = s.rec->pivot;
  const double* center = model_->clustering_.centers.ColData(pivot.cluster);
  if (pivot.series_first) {
    *c1 = model_->data_.ColumnData(s.e.u);
    *c2 = center;
    *t = model_->data_.ColumnData(s.e.v);
  } else {
    *c1 = center;
    *c2 = model_->data_.ColumnData(s.e.v);
    *t = model_->data_.ColumnData(s.e.u);
  }
}

bool IncrementalMaintainer::WillRefit(std::size_t slot_index, std::size_t refresh_index,
                                      const PairSlot& slot) const {
  if (refresh_index == kRefitAll || options_.exact_refit_period <= 1) return true;
  if (slot_index % options_.exact_refit_period ==
      refresh_index % options_.exact_refit_period) {
    return true;
  }
  return slot.rel_residual - slot.residual_at_refit > options_.refit_drift_threshold;
}

Status IncrementalMaintainer::SolveRelationships(std::size_t refresh_index,
                                                 const ExecContext& exec,
                                                 std::size_t* refit_count,
                                                 kernels::BlockSpanStats* span_stats) {
  const std::size_t m = window_;
  const std::size_t anchor = model_->data_.anchor_row();

  // Refresh the per-pivot inverse normal-equation factors from the exactly
  // recomputed pivot measures (the Gram shares the measures' sums, so this
  // matches a from-scratch ComputeGram bit for bit).
  ParallelChunks(exec, pivot_slots_.size(),
                 [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) {
                     PivotSlot& ps = pivot_slots_[i];
                     ps.invertible =
                         fit::InvertGram(fit::GramFromMeasures(ps.entry->measures), &ps.ginv);
                   }
                 });

  // Re-solve every relationship. Each slot writes only its own hash node;
  // refit counts and residual sums merge in chunk order (§7 determinism).
  std::vector<std::size_t> refits(ExecNumChunks(slots_.size()), 0);
  std::vector<double> residual_sums(ExecNumChunks(slots_.size()), 0.0);
  std::vector<kernels::BlockSpanStats> chunk_spans(
      span_stats != nullptr ? ExecNumChunks(slots_.size()) : 0);
  ParallelChunks(exec, slots_.size(), [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
    std::size_t local_refits = 0;
    double local_sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      PairSlot& s = slots_[i];
      const PivotSlot& ps = pivot_slots_[s.pivot_slot];
      const PivotPair& pivot = s.rec->pivot;
      const bool refit = WillRefit(i, refresh_index, s);
      if (refit) {
        const double* c1;
        const double* c2;
        const double* t;
        SlotColumns(s, &c1, &c2, &t);
        if (options_.retain_block_partials) {
          // Exact re-materialization from retained partials: bitwise
          // equal to Reset ≡ ComputeRhs by construction, paying only the
          // blocks the window moved over since this chain last slid.
          double sums[3];
          s.rhs_chain.SlideTo(
              anchor, m,
              [c1, c2, t](std::size_t r, double* v) {
                v[0] = c1[r] * t[r];
                v[1] = c2[r] * t[r];
                v[2] = t[r];
              },
              sums, span_stats != nullptr ? &chunk_spans[chunk] : nullptr);
          s.rhs.Install(sums);
        } else {
          s.rhs.Reset(c1, c2, t, m, anchor);
        }
        ++local_refits;
      }
      const double rhs[3] = {s.rhs.c1t, s.rhs.c2t, s.rhs.t};
      double x[3];
      if (!ps.invertible) {
        // Rank-deficient fallback (pivot columns collinear), from the same
        // maintained sums: series-side moments are in the exact pivot
        // measures, the pair sums in the accumulators — O(1), and after a
        // Reset bit-identical to the build path's FitRankDeficient.
        const PairMatrixMeasures& pm = ps.entry->measures;
        const double s11 = pivot.series_first ? pm.dot11 : pm.dot22;
        const double sh1 = pivot.series_first ? pm.h1 : pm.h2;
        const double r0 = pivot.series_first ? rhs[0] : rhs[1];
        fit::SolveRankDeficient(s11, sh1, r0, rhs[2], m, x);
        // Back to design-column order (the dropped coordinate is the
        // centre column, which sits first when the series is second).
        if (!pivot.series_first) std::swap(x[0], x[1]);
      } else {
        fit::Solve3(ps.ginv, rhs, x);
      }
      s.rec->transform = fit::MakeTransform(pivot.series_first, x);
      // Residual monitor through the normal-equation identity
      // ‖t − Xx̂‖² = tᵀt − x̂ᵀ(Xᵀt), normalized by ‖centered t‖ (the scale
      // core/quality uses). O(1) per relationship; x is in design-column
      // coordinates, so it holds for the restricted fit too (a zero sits
      // in the dropped coordinate).
      const ts::SeriesId t_series = pivot.series_first ? s.e.v : s.e.u;
      const SeriesStats& st = model_->series_stats_[t_series];
      const double resid2 =
          std::max(0.0, st.sumsq - (x[0] * rhs[0] + x[1] * rhs[1] + x[2] * rhs[2]));
      s.rel_residual = std::sqrt(resid2) /
                       (std::sqrt(static_cast<double>(m) * st.variance) + kTiny);
      if (refit) s.residual_at_refit = s.rel_residual;
      // affinity-lint: allow(fp-accumulate): per-chunk partial — chunk bounds are
      // thread-count-invariant and partials combine in fixed chunk order below
      local_sum += s.rel_residual;
    }
    refits[chunk] = local_refits;
    residual_sums[chunk] = local_sum;
  });

  std::size_t total_refits = 0;
  double sum = 0.0;
  for (std::size_t c = 0; c < refits.size(); ++c) {
    total_refits += refits[c];
    // affinity-lint: allow(fp-accumulate): combines chunk partials in ascending chunk
    // order — deterministic because the decomposition is thread-count-invariant
    sum += residual_sums[c];
  }
  if (span_stats != nullptr) {
    for (const kernels::BlockSpanStats& cs : chunk_spans) span_stats->Add(cs);
  }
  *refit_count = total_refits;
  profile_.mean_relative_residual =
      slots_.empty() ? 0.0 : sum / static_cast<double>(slots_.size());
  return Status::OK();
}

StatusOr<bool> IncrementalMaintainer::Advance(const std::vector<std::vector<double>>& rows,
                                              const ExecContext& exec) {
  return Advance(rows, rows.size(), exec);
}

StatusOr<bool> IncrementalMaintainer::Advance(const std::vector<std::vector<double>>& rows,
                                              std::size_t count, const ExecContext& exec) {
  Stopwatch watch;
  if (inject_failures_ > 0) {
    --inject_failures_;
    return Status::Internal("injected maintenance failure (testing)");
  }
  const std::size_t w = window_;
  if (count > rows.size()) {
    return Status::InvalidArgument("Advance count " + std::to_string(count) + " exceeds " +
                                   std::to_string(rows.size()) + " supplied rows");
  }
  const std::size_t d = count;
  if (d == 0) return false;
  for (std::size_t i = 0; i < d; ++i) {
    if (rows[i].size() != n_) {
      return Status::InvalidArgument("row has " + std::to_string(rows[i].size()) +
                                     " values, stream has " + std::to_string(n_) + " series");
    }
  }
  const std::size_t tail = std::min(d, w);  // rows entering the window
  const std::size_t keep = w - tail;        // old rows surviving the slide
  const std::size_t skip = d - tail;        // rows that fly through entirely
  // A slide covering the whole window replaces every sample: an exact
  // refit costs the same as the delta would and keeps the model
  // bit-identical to a from-scratch fit.
  const std::size_t refresh_index = tail == w ? kRefitAll : profile_.refreshes;
  const std::size_t k = model_->clustering_.k();

  // ---- Extended centre values for the entering rows (computed before
  // anything slides; the evictions below still need the old matrices).
  la::Matrix center_tails(tail, k);
  ParallelChunks(exec, k, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t l = lo; l < hi; ++l) {
      double* dst = center_tails.ColData(l);
      for (std::size_t r = 0; r < tail; ++r) {
        double acc = 0.0;
        for (const auto& [v, weight] : center_weights_[l]) {
          // affinity-lint: allow(fp-accumulate): weighted centre tail — member order is
          // fixed at freeze time; the whole cell is computed on one thread
          acc += (rows[skip + r][v] - frozen_means_[v]) * weight;
        }
        dst[r] = acc;
      }
    }
  });

  // ---- Delta-update the per-pair accumulators: evict the leaving rows
  // (read from the old matrices), add the entering ones. Slots scheduled
  // for an exact refit skip the delta — their accumulators re-materialize
  // in the solve pass.
  ParallelChunks(exec, slots_.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      PairSlot& s = slots_[i];
      if (WillRefit(i, refresh_index, s)) continue;
      const PivotPair& pivot = s.rec->pivot;
      const double* c1;
      const double* c2;
      const double* t;
      SlotColumns(s, &c1, &c2, &t);  // still the old matrices here
      for (std::size_t r = 0; r < tail; ++r) s.rhs.Evict(c1[r], c2[r], t[r]);
      const ts::SeriesId t_series = pivot.series_first ? s.e.v : s.e.u;
      const double* center_tail = center_tails.ColData(pivot.cluster);
      for (std::size_t r = 0; r < tail; ++r) {
        const std::vector<double>& row = rows[skip + r];
        const double c1v = pivot.series_first ? row[s.e.u] : center_tail[r];
        const double c2v = pivot.series_first ? center_tail[r] : row[s.e.v];
        s.rhs.Add(c1v, c2v, row[t_series]);
      }
    }
  });

  // ---- Maintain the sorted column views (before the slide: evictions
  // read the old columns). A full-window slide just re-sorts. The
  // retained mode histograms ride the same pass: bin counts are integers,
  // so evict/enter updates are exact while the binning — the window
  // extremes — holds; any extremes movement invalidates and
  // RecomputeDerived re-fills from the sorted view (DESIGN.md §10).
  if (options_.retain_block_partials) derived_cache_.modes.resize(n_ + k);
  ParallelChunks(exec, n_ + k, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t c = lo; c < hi; ++c) {
      double* sorted = sorted_cols_.ColData(c);
      DerivedBlockCache::ColumnModeHist* mh =
          options_.retain_block_partials ? &derived_cache_.modes[c] : nullptr;
      const bool is_series = c < n_;
      const double* old_col = is_series
                                  ? model_->data_.ColumnData(static_cast<ts::SeriesId>(c))
                                  : model_->clustering_.centers.ColData(c - n_);
      const double* added_tail = is_series ? nullptr : center_tails.ColData(c - n_);
      if (tail == w) {
        for (std::size_t r = 0; r < w; ++r) {
          sorted[r] = is_series ? rows[skip + r][c] : added_tail[r];
        }
        std::sort(sorted, sorted + w);
        if (mh != nullptr) mh->valid = false;
        continue;
      }
      for (std::size_t r = 0; r < tail; ++r) {
        const double added = is_series ? rows[skip + r][c] : added_tail[r];
        const double evicted = old_col[r];
        SortedReplace(sorted, w, evicted, added);
        if (mh != nullptr && mh->valid) {
          if (added < mh->lo || added > mh->hi) {
            // A new extreme rebins everything; stop updating now so the
            // bin map is never indexed out of range.
            mh->valid = false;
          } else {
            const int bins = static_cast<int>(mh->counts.size());
            --mh->counts[static_cast<std::size_t>(
                ts::stats::ModeBinOf(evicted, mh->lo, mh->hi, bins))];
            ++mh->counts[static_cast<std::size_t>(
                ts::stats::ModeBinOf(added, mh->lo, mh->hi, bins))];
          }
        }
      }
      // The binning is only reusable if the extremes survived the slide
      // (an evicted min/max shows up here as a shrunken range).
      if (mh != nullptr && mh->valid && (sorted[0] != mh->lo || sorted[w - 1] != mh->hi)) {
        mh->valid = false;
      }
    }
  });

  // ---- Slide the window matrices in place (no reallocation: the model's
  // data matrix is 2·window·n bytes of hot state) and recompute all exact
  // derived state.
  la::Matrix& values = model_->data_.mutable_matrix();
  ParallelChunks(exec, n_, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      double* col = values.ColData(j);
      for (std::size_t i = 0; i < keep; ++i) col[i] = col[tail + i];
      for (std::size_t r = 0; r < tail; ++r) col[keep + r] = rows[skip + r][j];
    }
  });
  la::Matrix& centers = model_->clustering_.centers;
  ParallelChunks(exec, k, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t l = lo; l < hi; ++l) {
      double* col = centers.ColData(l);
      const double* src_tail = center_tails.ColData(l);
      for (std::size_t i = 0; i < keep; ++i) col[i] = col[tail + i];
      for (std::size_t r = 0; r < tail; ++r) col[keep + r] = src_tail[r];
    }
  });
  // The window advanced by every consumed row (flown-through rows moved
  // the stream position too), so the block grid moves with it — retained
  // interior partials keep their absolute cut points (DESIGN.md §10).
  model_->data_.advance_anchor(d);
  DerivedBlockCache* cache = options_.retain_block_partials ? &derived_cache_ : nullptr;
  Stopwatch recompute_watch;
  model_->RecomputeDerived(exec, &sorted_cols_, cache);
  const double recompute_seconds = recompute_watch.ElapsedSeconds();

  // ---- Re-solve relationships and re-key the index. ----------------------
  kernels::BlockSpanStats refit_spans;
  std::size_t refits = 0;
  AFFINITY_RETURN_IF_ERROR(SolveRelationships(refresh_index, exec, &refits,
                                              cache != nullptr ? &refit_spans : nullptr));
  std::size_t rekeys = 0;
  std::size_t rekeys_skipped = 0;
  if (scape_ != nullptr) {
    AFFINITY_ASSIGN_OR_RETURN(rekeys,
                              scape_->Refresh(*model_, exec, &rekeys_skipped, scape_delta_log_));
  }

  // ---- Drift monitor: escalate when the population residual level left
  // the band the baseline established at the last full build.
  const bool escalate =
      profile_.mean_relative_residual >
      options_.escalation_factor * profile_.baseline_mean_residual + options_.escalation_slack;

  ++profile_.refreshes;
  profile_.rows_absorbed += d;
  profile_.last_rows_absorbed = d;
  profile_.relationships_refit += refits;
  profile_.last_relationships_refit = refits;
  profile_.relationships_updated += slots_.size() - refits;
  profile_.last_relationships_updated = slots_.size() - refits;
  profile_.tree_rekeys += rekeys;
  profile_.last_tree_rekeys = rekeys;
  profile_.scape_rekeys_skipped += rekeys_skipped;
  profile_.last_scape_rekeys_skipped = rekeys_skipped;
  kernels::BlockSpanStats spans = refit_spans;
  if (cache != nullptr) spans.Add(cache->last);
  profile_.last_recompute_blocks_touched = spans.touched;
  profile_.last_recompute_blocks_reused = spans.reused;
  profile_.last_recompute_prefix_resumes = spans.prefix_resumes;
  profile_.recompute_blocks_touched += spans.touched;
  profile_.recompute_blocks_reused += spans.reused;
  profile_.recompute_prefix_resumes += spans.prefix_resumes;
  profile_.last_recompute_seconds = recompute_seconds;
  profile_.recompute_seconds += recompute_seconds;
  if (escalate) ++profile_.escalations;
  profile_.last_refresh_seconds = watch.ElapsedSeconds();
  return escalate;
}

MaintenanceProfile AggregateShardProfiles(const std::vector<MaintenanceProfile>& shards) {
  MaintenanceProfile out;
  std::size_t with_residual = 0;
  double residual_sum = 0.0;
  double baseline_sum = 0.0;
  for (const MaintenanceProfile& p : shards) {
    out.refreshes += p.refreshes;
    out.rows_absorbed += p.rows_absorbed;
    out.relationships_updated += p.relationships_updated;
    out.relationships_refit += p.relationships_refit;
    out.tree_rekeys += p.tree_rekeys;
    out.scape_rekeys_skipped += p.scape_rekeys_skipped;
    out.escalations += p.escalations;
    out.recompute_blocks_touched += p.recompute_blocks_touched;
    out.recompute_blocks_reused += p.recompute_blocks_reused;
    out.recompute_prefix_resumes += p.recompute_prefix_resumes;
    out.recompute_seconds += p.recompute_seconds;
    out.last_rows_absorbed += p.last_rows_absorbed;
    out.last_relationships_updated += p.last_relationships_updated;
    out.last_relationships_refit += p.last_relationships_refit;
    out.last_tree_rekeys += p.last_tree_rekeys;
    out.last_scape_rekeys_skipped += p.last_scape_rekeys_skipped;
    out.last_recompute_blocks_touched += p.last_recompute_blocks_touched;
    out.last_recompute_blocks_reused += p.last_recompute_blocks_reused;
    out.last_recompute_prefix_resumes += p.last_recompute_prefix_resumes;
    // Shards recompute concurrently, so the slowest one is what the
    // append paid — same rule as last_refresh_seconds.
    out.last_recompute_seconds = std::max(out.last_recompute_seconds, p.last_recompute_seconds);
    // Shards refresh concurrently: the slowest one is the latency the
    // router's append actually paid.
    out.last_refresh_seconds = std::max(out.last_refresh_seconds, p.last_refresh_seconds);
    out.serve_fallbacks += p.serve_fallbacks;
    out.epochs_published += p.epochs_published;
    out.epochs_delta += p.epochs_delta;
    out.window_segments_reused += p.window_segments_reused;
    out.scape_runs_shared += p.scape_runs_shared;
    out.scape_runs_spliced += p.scape_runs_spliced;
    out.snapshot_bytes_copied += p.snapshot_bytes_copied;
    out.publish_seconds += p.publish_seconds;
    // Shards publish concurrently too: max, like the refresh latencies.
    out.last_publish_seconds = std::max(out.last_publish_seconds, p.last_publish_seconds);
    if (p.baseline_mean_residual > 0.0 || p.mean_relative_residual > 0.0) {
      ++with_residual;
      // affinity-lint: allow(fp-accumulate): profile merge in fixed shard order
      residual_sum += p.mean_relative_residual;
      // affinity-lint: allow(fp-accumulate): profile merge in fixed shard order
      baseline_sum += p.baseline_mean_residual;
    }
  }
  if (with_residual > 0) {
    out.mean_relative_residual = residual_sum / static_cast<double>(with_residual);
    out.baseline_mean_residual = baseline_sum / static_cast<double>(with_residual);
  }
  return out;
}

}  // namespace affinity::core
