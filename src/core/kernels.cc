#include "core/kernels.h"

#include "common/exec_context.h"
#include "ts/data_matrix.h"

namespace affinity::core::kernels {

std::vector<Marginals> HoistMarginals(const ts::DataMatrix& data, const ExecContext& exec) {
  std::vector<Marginals> out(data.n());
  const std::size_t anchor = data.anchor_row();
  ParallelChunks(exec, data.n(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      out[j] = ColumnMarginals(data.ColumnData(static_cast<ts::SeriesId>(j)), data.m(), anchor);
    }
  });
  return out;
}

std::vector<Marginals> HoistMarginals(const std::vector<const double*>& columns, std::size_t m,
                                      const ExecContext& exec, std::size_t anchor) {
  std::vector<Marginals> out(columns.size());
  ParallelChunks(exec, columns.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) out[j] = ColumnMarginals(columns[j], m, anchor);
  });
  return out;
}

}  // namespace affinity::core::kernels
