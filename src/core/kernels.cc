#include "core/kernels.h"

#include "common/exec_context.h"
#include "ts/data_matrix.h"

namespace affinity::core::kernels {

// The batch walks stride column-to-column: each ColumnMarginals pass is
// sequential within its column (hardware prefetch covers that), but the
// jump to the next column's base is a fresh stream — touch its head
// before finishing the current column so the walk doesn't stall on it.
// `out` never aliases the column data (it's a freshly allocated vector),
// hence the __restrict on the write side.

std::vector<Marginals> HoistMarginals(const ts::DataMatrix& data, const ExecContext& exec) {
  std::vector<Marginals> out(data.n());
  Marginals* __restrict res = out.data();
  const std::size_t anchor = data.anchor_row();
  ParallelChunks(exec, data.n(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      if (j + 1 < hi) __builtin_prefetch(data.ColumnData(static_cast<ts::SeriesId>(j + 1)));
      res[j] = ColumnMarginals(data.ColumnData(static_cast<ts::SeriesId>(j)), data.m(), anchor);
    }
  });
  return out;
}

std::vector<Marginals> HoistMarginals(const std::vector<const double*>& columns, std::size_t m,
                                      const ExecContext& exec, std::size_t anchor) {
  std::vector<Marginals> out(columns.size());
  Marginals* __restrict res = out.data();
  ParallelChunks(exec, columns.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      if (j + 1 < hi) __builtin_prefetch(columns[j + 1]);
      res[j] = ColumnMarginals(columns[j], m, anchor);
    }
  });
  return out;
}

std::vector<MaskedMarginals> HoistMaskedMarginals(const std::vector<const double*>& columns,
                                                  const std::vector<const std::uint8_t*>& masks,
                                                  std::size_t m, const ExecContext& exec,
                                                  std::size_t anchor) {
  AFFINITY_CHECK(masks.empty() || masks.size() == columns.size());
  std::vector<MaskedMarginals> out(columns.size());
  MaskedMarginals* __restrict res = out.data();
  ParallelChunks(exec, columns.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      if (j + 1 < hi) __builtin_prefetch(columns[j + 1]);
      const std::uint8_t* mask = masks.empty() ? nullptr : masks[j];
      res[j] = MaskedColumnMarginals(columns[j], mask, m, anchor);
    }
  });
  return out;
}

}  // namespace affinity::core::kernels
