#include "core/streaming.h"

#include <algorithm>

namespace affinity::core {

namespace {

/// Segment capacity keeping post-compaction residency O(window): small
/// windows get small segments, large ones cap at the storage default.
std::size_t DeriveSegmentCapacity(const StreamingOptions& options) {
  if (options.segment_capacity > 0) return options.segment_capacity;
  return std::clamp<std::size_t>(options.window / 4, 16, 1024);
}

}  // namespace

StatusOr<StreamingAffinity> StreamingAffinity::Create(const std::vector<std::string>& names,
                                                      const StreamingOptions& options) {
  if (names.size() < 2) {
    return Status::InvalidArgument("streaming requires at least 2 series");
  }
  if (options.window < 2) {
    return Status::InvalidArgument("streaming requires window >= 2");
  }
  if (options.rebuild_interval < 1) {
    return Status::InvalidArgument("streaming requires rebuild_interval >= 1");
  }
  if (options.incremental.exact_refit_period < 1) {
    return Status::InvalidArgument("streaming requires exact_refit_period >= 1");
  }
  storage::DataMatrixTable table(DeriveSegmentCapacity(options));
  for (const std::string& name : names) {
    AFFINITY_RETURN_IF_ERROR(table.RegisterSeries(name, "stream", 1.0).status());
  }
  // One pool for the stream's lifetime: every refresh reuses it, so the
  // per-refresh cost is the refresh itself, never thread setup.
  std::unique_ptr<ThreadPool> pool;
  if (options.build.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.build.threads);
  }
  StreamingAffinity stream(std::move(table), options, std::move(pool));
  stream.rolling_.reserve(names.size());
  for (std::size_t j = 0; j < names.size(); ++j) {
    stream.rolling_.emplace_back(options.window);
  }
  return stream;
}

AppendResult StreamingAffinity::Append(const std::vector<double>& row) {
  AppendResult out;
  out.status = table_.AppendRow(row);
  if (!out.status.ok()) return out;
  ++rows_;
  ++rows_since_refresh_;
  // O(1)-per-sample window moments (ts/rolling): the between-refresh
  // freshness signal, live even while the snapshot ages.
  for (std::size_t j = 0; j < row.size(); ++j) rolling_[j].Push(row[j]);
  if (options_.mode == UpdateMode::kIncremental && framework_ != nullptr) {
    pending_.push_back(row);
  }
  if (rows_ >= options_.window &&
      (framework_ == nullptr || rows_since_refresh_ >= options_.rebuild_interval)) {
    out = Refresh();
  }
  // Absorbed rows are reclaimed at segment granularity so resident storage
  // stays O(window) on unbounded streams.
  if (rows_ > options_.window) {
    table_.CompactBefore(rows_ - options_.window);
  }
  return out;
}

AppendResult StreamingAffinity::Refresh() {
  AppendResult out;
  if (options_.mode == UpdateMode::kIncremental && maintainer_ != nullptr) {
    out.mode = UpdateMode::kIncremental;
    auto escalate = maintainer_->Advance(pending_, exec());
    pending_.clear();
    if (!escalate.ok()) {
      // The maintainer may be half-mutated; recover by re-freezing the
      // whole stack from the table (the rows are all still there) rather
      // than resuming delta maintenance on corrupted state.
      ++maintenance_.escalations;
      out.escalated = true;
      out.status = Rebuild();
      out.refreshed = out.status.ok();
      return out;
    }
    // Accumulate maintenance accounting across maintainer generations
    // (escalation re-freezes the structure and resets the maintainer).
    const MaintenanceProfile& p = maintainer_->profile();
    ++maintenance_.refreshes;
    maintenance_.rows_absorbed += p.last_rows_absorbed;
    maintenance_.relationships_updated += p.last_relationships_updated;
    maintenance_.relationships_refit += p.last_relationships_refit;
    maintenance_.tree_rekeys += p.last_tree_rekeys;
    maintenance_.last_refresh_seconds = p.last_refresh_seconds;
    maintenance_.last_rows_absorbed = p.last_rows_absorbed;
    maintenance_.last_relationships_updated = p.last_relationships_updated;
    maintenance_.last_relationships_refit = p.last_relationships_refit;
    maintenance_.last_tree_rekeys = p.last_tree_rekeys;
    maintenance_.mean_relative_residual = p.mean_relative_residual;
    maintenance_.baseline_mean_residual = p.baseline_mean_residual;
    ++refreshes_;
    snapshot_row_ = rows_;
    rows_since_refresh_ = 0;
    if (*escalate) {
      ++maintenance_.escalations;
      out.escalated = true;
      out.status = Rebuild();
      out.refreshed = out.status.ok();
      return out;
    }
    // WF sketches (when built) are refreshed over the slid window so the
    // facade stays coherent — only when the incremental snapshot is kept
    // (a rebuild constructs fresh sketches itself).
    out.status = framework_->RefreshWf();
    out.refreshed = out.status.ok();
    return out;
  }
  out.mode = UpdateMode::kRebuild;
  out.status = Rebuild();
  out.refreshed = out.status.ok();
  return out;
}

Status StreamingAffinity::Rebuild() {
  if (rows_ < options_.window) {
    return Status::FailedPrecondition("need " + std::to_string(options_.window) +
                                      " rows before the first rebuild (have " +
                                      std::to_string(rows_) + ")");
  }
  AFFINITY_ASSIGN_OR_RETURN(ts::DataMatrix snapshot, table_.Snapshot());
  AFFINITY_ASSIGN_OR_RETURN(ts::DataMatrix window, ts::TailWindow(snapshot, options_.window));
  AFFINITY_ASSIGN_OR_RETURN(Affinity fw, Affinity::BuildWith(window, options_.build, exec()));
  framework_ = std::make_unique<Affinity>(std::move(fw));
  maintainer_ = nullptr;
  if (options_.mode == UpdateMode::kIncremental) {
    AFFINITY_ASSIGN_OR_RETURN(
        IncrementalMaintainer maintainer,
        IncrementalMaintainer::Create(framework_->mutable_model(), framework_->mutable_scape(),
                                      options_.incremental, exec()));
    maintainer_ = std::make_unique<IncrementalMaintainer>(std::move(maintainer));
    maintenance_.mean_relative_residual = maintainer_->profile().mean_relative_residual;
    maintenance_.baseline_mean_residual = maintainer_->profile().baseline_mean_residual;
  }
  pending_.clear();
  snapshot_row_ = rows_;
  rows_since_refresh_ = 0;
  ++rebuilds_;
  return Status::OK();
}

}  // namespace affinity::core
