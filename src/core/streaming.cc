#include "core/streaming.h"

namespace affinity::core {

StatusOr<StreamingAffinity> StreamingAffinity::Create(const std::vector<std::string>& names,
                                                      const StreamingOptions& options) {
  if (names.size() < 2) {
    return Status::InvalidArgument("streaming requires at least 2 series");
  }
  if (options.window < 2) {
    return Status::InvalidArgument("streaming requires window >= 2");
  }
  if (options.rebuild_interval < 1) {
    return Status::InvalidArgument("streaming requires rebuild_interval >= 1");
  }
  storage::DataMatrixTable table;
  for (const std::string& name : names) {
    AFFINITY_RETURN_IF_ERROR(table.RegisterSeries(name, "stream", 1.0).status());
  }
  // One pool for the stream's lifetime: every rebuild reuses it, so the
  // per-rebuild cost is the build itself, never thread setup.
  std::unique_ptr<ThreadPool> pool;
  if (options.build.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.build.threads);
  }
  return StreamingAffinity(std::move(table), options, std::move(pool));
}

Status StreamingAffinity::Append(const std::vector<double>& row) {
  AFFINITY_RETURN_IF_ERROR(table_.AppendRow(row));
  ++rows_;
  ++rows_since_rebuild_;
  if (rows_ >= options_.window &&
      (framework_ == nullptr || rows_since_rebuild_ >= options_.rebuild_interval)) {
    return Rebuild();
  }
  return Status::OK();
}

Status StreamingAffinity::Rebuild() {
  if (rows_ < options_.window) {
    return Status::FailedPrecondition("need " + std::to_string(options_.window) +
                                      " rows before the first rebuild (have " +
                                      std::to_string(rows_) + ")");
  }
  AFFINITY_ASSIGN_OR_RETURN(ts::DataMatrix snapshot, table_.Snapshot());
  AFFINITY_ASSIGN_OR_RETURN(ts::DataMatrix window, ts::TailWindow(snapshot, options_.window));
  AFFINITY_ASSIGN_OR_RETURN(Affinity fw, Affinity::BuildWith(window, options_.build, exec()));
  framework_ = std::make_unique<Affinity>(std::move(fw));
  snapshot_row_ = rows_;
  rows_since_rebuild_ = 0;
  ++rebuilds_;
  return Status::OK();
}

}  // namespace affinity::core
