#include "core/streaming.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace affinity::core {

namespace {

/// Segment capacity keeping post-compaction residency O(window): small
/// windows get small segments, large ones cap at the storage default.
/// Rounded down to a power of two so derived segments always tile the
/// canonical summation blocks (`kernels::kBlockElems`, itself a power of
/// two) — segment boundaries then never straddle a block boundary, the
/// layout the retained-partial cache is designed around (DESIGN.md §10).
std::size_t DeriveSegmentCapacity(const StreamingOptions& options) {
  if (options.segment_capacity > 0) return options.segment_capacity;
  const std::size_t raw = std::clamp<std::size_t>(options.window / 4, 16, 1024);
  std::size_t pow2 = 16;
  while (pow2 * 2 <= raw) pow2 *= 2;
  return pow2;
}

}  // namespace

Status ValidateStreamingOptions(const StreamingOptions& options, std::size_t series_count) {
  if (series_count < 2) {
    return Status::InvalidArgument("streaming requires at least 2 series (have " +
                                   std::to_string(series_count) + ")");
  }
  if (options.window < 2) {
    return Status::InvalidArgument("streaming requires window >= 2");
  }
  if (options.window > (std::size_t{1} << 24)) {
    return Status::InvalidArgument("window " + std::to_string(options.window) +
                                   " exceeds the 2^24 sanity bound");
  }
  if (options.rebuild_interval < 1) {
    return Status::InvalidArgument("streaming requires rebuild_interval >= 1");
  }
  if (options.incremental.exact_refit_period < 1) {
    return Status::InvalidArgument("streaming requires exact_refit_period >= 1");
  }
  if (options.incremental.escalation_factor <= 0.0) {
    return Status::InvalidArgument("streaming requires escalation_factor > 0");
  }
  return Status::OK();
}

double BlendPairMeasure(Measure measure, double snapshot_corr, double snapshot_value,
                        const ts::RollingStats& u, const ts::RollingStats& v) {
  const double m = static_cast<double>(u.count());
  if (m == 0.0) return snapshot_value;
  const double var_u = u.Variance();
  const double var_v = v.Variance();
  // The blended covariance: snapshot correlation × live scales. A live
  // constant series has zero covariance with anything, exactly.
  const double cov = (var_u > 0.0 && var_v > 0.0)
                         ? snapshot_corr * std::sqrt(var_u * var_v)
                         : 0.0;
  // Population identity Σuv = m·(cov + mean_u·mean_v) lifts the blend to
  // the dot product, and the live energies normalize the rest.
  const double dot = m * (cov + u.Mean() * v.Mean());
  switch (measure) {
    case Measure::kCovariance:
      return cov;
    case Measure::kCorrelation:
      // Scale-free: the live marginals carry no cross information.
      return snapshot_corr;
    case Measure::kDotProduct:
      return dot;
    case Measure::kCosine: {
      const double denom = std::sqrt(u.SumSquares() * v.SumSquares());
      return denom > 0.0 ? dot / denom : snapshot_value;
    }
    case Measure::kJaccard: {
      const double denom = u.SumSquares() + v.SumSquares() - dot;
      return denom != 0.0 ? dot / denom : snapshot_value;
    }
    case Measure::kDice: {
      const double denom = u.SumSquares() + v.SumSquares();
      return denom > 0.0 ? 2.0 * dot / denom : snapshot_value;
    }
    default:
      return snapshot_value;  // L-measures are not pair measures
  }
}

StatusOr<StreamingAffinity> StreamingAffinity::Create(const std::vector<std::string>& names,
                                                      const StreamingOptions& options) {
  AFFINITY_RETURN_IF_ERROR(ValidateStreamingOptions(options, names.size()));
  // One pool for the stream's lifetime: every refresh reuses it, so the
  // per-refresh cost is the refresh itself, never thread setup.
  std::unique_ptr<ThreadPool> pool;
  if (options.build.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.build.threads);
  }
  ExecContext exec{pool.get()};
  storage::DataMatrixTable table(DeriveSegmentCapacity(options));
  for (const std::string& name : names) {
    if (name.empty()) return Status::InvalidArgument("series names must be non-empty");
    AFFINITY_RETURN_IF_ERROR(table.RegisterSeries(name, "stream", 1.0).status());
  }
  StreamingAffinity stream(std::move(table), options, std::move(pool), exec);
  stream.InitBuffers(names.size());
  return stream;
}

StatusOr<StreamingAffinity> StreamingAffinity::CreateWith(const std::vector<std::string>& names,
                                                          const StreamingOptions& options,
                                                          const ExecContext& exec) {
  AFFINITY_RETURN_IF_ERROR(ValidateStreamingOptions(options, names.size()));
  storage::DataMatrixTable table(DeriveSegmentCapacity(options));
  for (const std::string& name : names) {
    if (name.empty()) return Status::InvalidArgument("series names must be non-empty");
    AFFINITY_RETURN_IF_ERROR(table.RegisterSeries(name, "stream", 1.0).status());
  }
  StreamingAffinity stream(std::move(table), options, nullptr, exec);
  stream.InitBuffers(names.size());
  return stream;
}

StatusOr<StreamingAffinity> StreamingAffinity::Restore(AffinityModel model,
                                                       const StreamingOptions& options,
                                                       const ExecContext& exec) {
  const std::size_t n = model.data().n();
  const std::size_t m = model.data().m();
  AFFINITY_RETURN_IF_ERROR(ValidateStreamingOptions(options, n));
  if (m != options.window) {
    return Status::InvalidArgument("checkpointed window has " + std::to_string(m) +
                                   " rows but options.window is " +
                                   std::to_string(options.window));
  }
  // The checkpointed window becomes the resident table content; logical
  // row numbering restarts at `window`.
  storage::DataMatrixTable table(DeriveSegmentCapacity(options));
  for (const std::string& name : model.data().names()) {
    if (name.empty()) return Status::InvalidArgument("series names must be non-empty");
    AFFINITY_RETURN_IF_ERROR(table.RegisterSeries(name, "stream", 1.0).status());
  }
  std::vector<double> row(n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) row[j] = model.data().matrix()(i, j);
    AFFINITY_RETURN_IF_ERROR(table.AppendRow(row));
  }
  StreamingAffinity stream(std::move(table), options, nullptr, exec);
  stream.InitBuffers(n);
  // Replay the window through the rolling moments (and the quality ring,
  // as fully observed rows — a checkpoint stores no masks) so the live
  // marginals match the restored snapshot exactly.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = model.data().matrix()(i, j);
      stream.rolling_[j].Push(row[j]);
    }
    stream.quality_->Push(row.data(), nullptr, nullptr);
  }
  stream.RefreshQualityScores();
  AFFINITY_ASSIGN_OR_RETURN(Affinity fw,
                            Affinity::FromModelWith(std::move(model), options.build, exec));
  stream.framework_ = std::make_unique<Affinity>(std::move(fw));
  stream.framework_->mutable_engine()->AttachQuality(&stream.quality_scores_);
  stream.rows_ = m;
  stream.snapshot_row_ = m;
  stream.rebuilds_ = 1;
  if (options.mode == UpdateMode::kIncremental) {
    AFFINITY_ASSIGN_OR_RETURN(
        IncrementalMaintainer maintainer,
        IncrementalMaintainer::Create(stream.framework_->mutable_model(),
                                      stream.framework_->mutable_scape(), options.incremental,
                                      exec));
    stream.maintainer_ = std::make_unique<IncrementalMaintainer>(std::move(maintainer));
    stream.maintainer_->set_scape_delta_log(stream.scape_delta_log_.get());
    stream.maintenance_.mean_relative_residual =
        stream.maintainer_->profile().mean_relative_residual;
    stream.maintenance_.baseline_mean_residual =
        stream.maintainer_->profile().baseline_mean_residual;
  }
  // A restored stream is immediately queryable, so it serves immediately
  // too: publish the first epoch from the restored stack.
  stream.PublishServingSnapshot();
  return stream;
}

void StreamingAffinity::InitBuffers(std::size_t series_count) {
  rolling_.reserve(series_count);
  for (std::size_t j = 0; j < series_count; ++j) {
    rolling_.emplace_back(options_.window);
  }
  quality_ = std::make_unique<ts::QualityTracker>(series_count, options_.window);
  quality_scores_.assign(series_count, 1.0);
  if (options_.mode == UpdateMode::kIncremental) {
    // One interval of rows, preallocated once: the append hot path copies
    // into this pool and never allocates in steady state.
    pending_.resize(options_.rebuild_interval);
    for (auto& pending_row : pending_) pending_row.reserve(series_count);
  }
}

AppendResult StreamingAffinity::Append(const std::vector<double>& row) {
  return AppendRow(row, nullptr, nullptr);
}

AppendResult StreamingAffinity::AppendMasked(const std::vector<double>& values,
                                             const std::vector<std::uint8_t>& valid,
                                             const std::vector<std::uint8_t>& filled) {
  AppendResult out;
  if (valid.size() != values.size() || filled.size() != values.size()) {
    out.status = Status::InvalidArgument(
        "AppendMasked masks must match the row (" + std::to_string(values.size()) +
        " values, " + std::to_string(valid.size()) + " valid, " +
        std::to_string(filled.size()) + " filled)");
    return out;
  }
  return AppendRow(values, valid.data(), filled.data());
}

AFFINITY_HOT AppendResult StreamingAffinity::AppendRow(const std::vector<double>& values,
                                                       const std::uint8_t* valid,
                                                       const std::uint8_t* filled) {
  AppendResult out;
  // Reject non-finite input before any state mutates: one NaN reaching the
  // rolling moments (or the window) would poison every downstream sum, and
  // a partially applied row would desynchronize table/rolling/quality.
  // Dirty streams pre-repair through ts::StreamAligner, which emits dense
  // finite rows plus the masks.
  for (std::size_t j = 0; j < values.size(); ++j) {
    if (!std::isfinite(values[j])) {
      out.status = Status::InvalidArgument(
          "row value for series " + std::to_string(j) +
          " is not finite; align dirty streams through ts::StreamAligner + AppendMasked");
      return out;
    }
  }
  out.status = table_.AppendRow(values);
  if (!out.status.ok()) return out;
  ++rows_;
  ++rows_since_refresh_;
  // O(1)-per-sample window moments (ts/rolling): the live marginals behind
  // the freshness blend, current even while the snapshot ages.
  for (std::size_t j = 0; j < values.size(); ++j) rolling_[j].Push(values[j]);
  // The quality ring mirrors the window's masks; a plain append is a fully
  // observed row (null masks).
  quality_->Push(values.data(), valid, filled);
  if (options_.mode == UpdateMode::kIncremental && framework_ != nullptr) {
    if (pending_used_ == pending_.size()) pending_.emplace_back();
    pending_[pending_used_].assign(values.begin(), values.end());
    ++pending_used_;
  }
  if (rows_ >= options_.window &&
      (framework_ == nullptr || rows_since_refresh_ >= options_.rebuild_interval)) {
    out = Refresh();
  }
  // Absorbed rows are reclaimed at segment granularity so resident storage
  // stays O(window) on unbounded streams.
  if (rows_ > options_.window) {
    table_.CompactBefore(rows_ - options_.window);
  }
  return out;
}

void StreamingAffinity::RefreshQualityScores() {
  const std::vector<double>& scores = quality_->Scores();
  quality_scores_.assign(scores.begin(), scores.end());
}

AppendResult StreamingAffinity::Refresh() {
  AppendResult out;
  if (options_.mode == UpdateMode::kIncremental && maintainer_ != nullptr) {
    out.mode = UpdateMode::kIncremental;
    // The delta publication path may run only when the published epoch
    // still equals the pre-Advance structures — capture that before the
    // maintainer mutates them (and invalidates the equality).
    const bool try_delta = delta_publish_valid_;
    delta_publish_valid_ = false;
    auto escalate = maintainer_->Advance(pending_, pending_used_, exec_);
    pending_used_ = 0;
    if (!escalate.ok()) {
      // The maintainer may be half-mutated; recover by re-freezing the
      // whole stack from the table (the rows are all still there) rather
      // than resuming delta maintenance on corrupted state.
      ++maintenance_.escalations;
      out.escalated = true;
      out.status = Rebuild();
      out.refreshed = out.status.ok();
      return out;
    }
    // Accumulate maintenance accounting across maintainer generations
    // (escalation re-freezes the structure and resets the maintainer).
    maintenance_.AbsorbRefresh(maintainer_->profile());
    ++refreshes_;
    snapshot_row_ = rows_;
    rows_since_refresh_ = 0;
    if (*escalate) {
      ++maintenance_.escalations;
      out.escalated = true;
      out.status = Rebuild();
      out.refreshed = out.status.ok();
      return out;
    }
    // WF sketches (when built) are refreshed over the slid window so the
    // facade stays coherent — only when the incremental snapshot is kept
    // (a rebuild constructs fresh sketches itself).
    out.status = framework_->RefreshWf();
    out.refreshed = out.status.ok();
    if (out.refreshed) {
      // The quality surface advances with the snapshot it describes.
      RefreshQualityScores();
      PublishServingSnapshot(try_delta);
    }
    return out;
  }
  out.mode = UpdateMode::kRebuild;
  out.status = Rebuild();
  out.refreshed = out.status.ok();
  return out;
}

Status StreamingAffinity::Rebuild() {
  // A rebuild replaces the whole stack: whatever the delta log covered is
  // history the new trees do not share.
  delta_publish_valid_ = false;
  if (rows_ < options_.window) {
    return Status::FailedPrecondition("need " + std::to_string(options_.window) +
                                      " rows before the first rebuild (have " +
                                      std::to_string(rows_) + ")");
  }
  AFFINITY_ASSIGN_OR_RETURN(ts::DataMatrix snapshot, table_.Snapshot());
  AFFINITY_ASSIGN_OR_RETURN(ts::DataMatrix window, ts::TailWindow(snapshot, options_.window));
  // Quality advances to the rebuilt window first: the AFCLST pivot-hygiene
  // exclusion (when enabled) and the engine's quality surface must both
  // describe the window this build is about to freeze.
  RefreshQualityScores();
  AffinityOptions build = options_.build;
  if (build.afclst.min_center_quality > 0.0) {
    build.afclst.series_quality = quality_scores_;
  }
  AFFINITY_ASSIGN_OR_RETURN(Affinity fw, Affinity::BuildWith(window, build, exec_));
  framework_ = std::make_unique<Affinity>(std::move(fw));
  framework_->mutable_engine()->AttachQuality(&quality_scores_);
  maintainer_ = nullptr;
  if (options_.mode == UpdateMode::kIncremental) {
    AFFINITY_ASSIGN_OR_RETURN(
        IncrementalMaintainer maintainer,
        IncrementalMaintainer::Create(framework_->mutable_model(), framework_->mutable_scape(),
                                      options_.incremental, exec_));
    maintainer_ = std::make_unique<IncrementalMaintainer>(std::move(maintainer));
    maintainer_->set_scape_delta_log(scape_delta_log_.get());
    maintenance_.mean_relative_residual = maintainer_->profile().mean_relative_residual;
    maintenance_.baseline_mean_residual = maintainer_->profile().baseline_mean_residual;
  }
  pending_used_ = 0;
  snapshot_row_ = rows_;
  rows_since_refresh_ = 0;
  ++rebuilds_;
  PublishServingSnapshot();
  return Status::OK();
}

void StreamingAffinity::PublishServingSnapshot(bool try_delta) {
  if (framework_ == nullptr) return;
  if (publisher_ == nullptr) {
    publisher_ = std::make_unique<serve::EpochPublisher<serve::ServingSnapshot>>(
        options_.serving_history);
  }
  ++serving_generation_;
  Stopwatch watch;
  serve::PublishStats stats;
  std::shared_ptr<const serve::ServingSnapshot> next;
  if (try_delta && maintainer_ != nullptr) {
    // Incremental epoch: COW window segments, shared/spliced SCAPE runs.
    // BuildDelta declines (nullptr) when any precondition fails — shape
    // drift, missing prior, compacted window — and the full flatten below
    // takes over; either path publishes identical bits.
    if (auto prior = publisher_->Acquire(); prior != nullptr) {
      next = serve::SnapshotBuilder::BuildDelta(
          framework_->model(), framework_->scape(), *scape_delta_log_, table_, *prior,
          framework_->engine().Capabilities(), serving_generation_, rows_, exec_, &stats,
          std::move(serving_scratch_));
      serving_scratch_.reset();
    }
  }
  if (next == nullptr) {
    next = serve::SnapshotBuilder::Build(framework_->model(), framework_->scape(),
                                         framework_->engine().Capabilities(),
                                         serving_generation_, rows_, &stats);
  }
  // Recycle the retired epoch (no surviving readers) into the next delta
  // build: its tables are rewritten in place, so steady-state publication
  // neither frees nor allocates the replica's memory.
  if (auto retired = publisher_->Publish(std::move(next));
      retired != nullptr && retired.use_count() == 1) {
    serving_scratch_ = std::const_pointer_cast<serve::ServingSnapshot>(std::move(retired));
  }
  delta_publish_valid_ = true;
  const double seconds = watch.ElapsedSeconds();
  ++maintenance_.epochs_published;
  if (stats.delta) ++maintenance_.epochs_delta;
  maintenance_.window_segments_reused += stats.window_segments_reused;
  maintenance_.scape_runs_shared += stats.trees_shared;
  maintenance_.scape_runs_spliced += stats.trees_spliced;
  maintenance_.snapshot_bytes_copied += stats.bytes_copied;
  maintenance_.publish_seconds += seconds;
  maintenance_.last_publish_seconds = seconds;
}

std::shared_ptr<const serve::ServingSnapshot> StreamingAffinity::BuildColdSnapshot() const {
  if (framework_ == nullptr) return nullptr;
  return serve::SnapshotBuilder::Build(framework_->model(), framework_->scape(),
                                       framework_->engine().Capabilities(), serving_generation_,
                                       snapshot_row_);
}

// ---------------------------------------------------------------------------
// Freshness-bounded queries (DESIGN.md §9).
// ---------------------------------------------------------------------------

ExecutedPlan StreamingAffinity::BlendPlan() const {
  ExecutedPlan plan;
  plan.method = QueryMethod::kAffine;
  plan.rationale = "freshness blend: snapshot structure (age " +
                   std::to_string(snapshot_age()) +
                   " rows) rescaled by live rolling marginals";
  return plan;
}

StatusOr<double> StreamingAffinity::BlendedSeriesValue(Measure measure, ts::SeriesId v) const {
  if (!ready()) return Status::FailedPrecondition("no snapshot yet");
  if (v >= rolling_.size()) {
    return Status::OutOfRange("series id " + std::to_string(v) + " out of range");
  }
  switch (measure) {
    case Measure::kMean:
      // The rolling window serves the live mean exactly.
      return rolling_[v].Mean();
    case Measure::kMedian:
    case Measure::kMode:
      // No O(1) live form — the snapshot value stands (documented).
      return framework_->model().SeriesMeasure(measure, v);
    default:
      return Status::InvalidArgument("not an L-measure");
  }
}

StatusOr<double> StreamingAffinity::BlendedPairValue(Measure measure, ts::SeriesId u,
                                                     ts::SeriesId v) const {
  if (!ready()) return Status::FailedPrecondition("no snapshot yet");
  const std::size_t n = rolling_.size();
  if (u >= n || v >= n) return Status::OutOfRange("series id out of range");
  if (u == v) return Status::InvalidArgument("blended pair values require u != v");
  const AffinityModel& model = framework_->model();
  const ts::SequencePair e(u, v);
  // Structure from the snapshot: the WA correlation when the relationship
  // exists, the naive snapshot correlation otherwise (truncated models).
  double rho;
  if (auto wa = model.PairMeasure(Measure::kCorrelation, e); wa.ok()) {
    rho = *wa;
  } else {
    const ts::DataMatrix& snap = framework_->data();
    AFFINITY_ASSIGN_OR_RETURN(rho, NaivePairMeasure(Measure::kCorrelation, snap.ColumnData(e.u),
                                                    snap.ColumnData(e.v), snap.m(),
                                                    snap.anchor_row()));
  }
  double fallback;
  if (auto wa = model.PairMeasure(measure, e); wa.ok()) {
    fallback = *wa;
  } else {
    const ts::DataMatrix& snap = framework_->data();
    AFFINITY_ASSIGN_OR_RETURN(fallback, NaivePairMeasure(measure, snap.ColumnData(e.u),
                                                         snap.ColumnData(e.v), snap.m(),
                                                         snap.anchor_row()));
  }
  return BlendPairMeasure(measure, rho, fallback, rolling_[e.u], rolling_[e.v]);
}

StatusOr<SelectionResult> StreamingAffinity::BlendedSelect(Measure measure,
                                                           bool (*keep)(double, double, double),
                                                           double a, double b) const {
  SelectionResult out;
  const std::size_t n = rolling_.size();
  if (IsLocation(measure)) {
    for (std::size_t v = 0; v < n; ++v) {
      AFFINITY_ASSIGN_OR_RETURN(const double value,
                                BlendedSeriesValue(measure, static_cast<ts::SeriesId>(v)));
      if (keep(value, a, b)) out.series.push_back(static_cast<ts::SeriesId>(v));
    }
    return out;
  }
  if (n < 2) return out;
  const std::vector<ts::SequencePair> pairs = ts::AllSequencePairs(n);
  std::vector<std::vector<ts::SequencePair>> parts(ExecNumChunks(pairs.size()));
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec_, pairs.size(), [&](std::size_t c, std::size_t lo, std::size_t hi) -> Status {
        for (std::size_t i = lo; i < hi; ++i) {
          auto value = BlendedPairValue(measure, pairs[i].u, pairs[i].v);
          if (!value.ok()) return value.status();
          if (keep(*value, a, b)) parts[c].push_back(pairs[i]);
        }
        return Status::OK();
      }));
  for (std::vector<ts::SequencePair>& part : parts) {
    out.pairs.insert(out.pairs.end(), part.begin(), part.end());
  }
  return out;
}

StatusOr<TopKResult> StreamingAffinity::BlendedTopK(const TopKRequest& request) const {
  const std::size_t n = rolling_.size();
  const std::size_t total =
      IsLocation(request.measure) ? n : ts::SequencePairCount(n);
  std::vector<ScapeTopKEntry> all(total);
  if (IsLocation(request.measure)) {
    for (std::size_t v = 0; v < n; ++v) {
      AFFINITY_ASSIGN_OR_RETURN(const double value,
                                BlendedSeriesValue(request.measure, static_cast<ts::SeriesId>(v)));
      all[v] = ScapeTopKEntry{ts::SequencePair{}, static_cast<ts::SeriesId>(v), value};
    }
  } else {
    const std::vector<ts::SequencePair> pairs = ts::AllSequencePairs(n);
    AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
        exec_, pairs.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
          for (std::size_t i = lo; i < hi; ++i) {
            auto value = BlendedPairValue(request.measure, pairs[i].u, pairs[i].v);
            if (!value.ok()) return value.status();
            all[i] = ScapeTopKEntry{pairs[i], kNoSeries, *value};
          }
          return Status::OK();
        }));
  }
  const std::size_t k = request.k < all.size() ? request.k : all.size();
  const auto better = [&](const ScapeTopKEntry& a, const ScapeTopKEntry& b) {
    return request.largest ? a.value > b.value : a.value < b.value;
  };
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(k), all.end(), better);
  all.resize(k);
  TopKResult out;
  out.entries = std::move(all);
  out.examined = total;
  return out;
}

StatusOr<MecResponse> StreamingAffinity::BlendedMec(const MecRequest& request) const {
  if (request.ids.empty()) return Status::InvalidArgument("MEC requires a non-empty id set");
  const std::size_t n = rolling_.size();
  for (const ts::SeriesId id : request.ids) {
    if (id >= n) {
      return Status::OutOfRange("series id " + std::to_string(id) + " out of range (n=" +
                                std::to_string(n) + ")");
    }
  }
  MecResponse out;
  const std::size_t count = request.ids.size();
  if (IsLocation(request.measure)) {
    out.location = la::Vector(count);
    for (std::size_t i = 0; i < count; ++i) {
      AFFINITY_ASSIGN_OR_RETURN(out.location[i],
                                BlendedSeriesValue(request.measure, request.ids[i]));
    }
    return out;
  }
  out.pair_values = la::Matrix(count, count);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t j = i; j < count; ++j) {
      double value;
      if (request.ids[i] == request.ids[j]) {
        // Diagonal: live per-series moments (the engine's diagonal
        // semantics, served from the rolling window).
        const ts::RollingStats& rs = rolling_[request.ids[i]];
        switch (request.measure) {
          case Measure::kCovariance:
            value = rs.Variance();
            break;
          case Measure::kDotProduct:
            value = rs.SumSquares();
            break;
          case Measure::kCorrelation:
            value = rs.Variance() > 0.0 ? 1.0 : 0.0;
            break;
          case Measure::kCosine:
          case Measure::kJaccard:
          case Measure::kDice:
            value = rs.SumSquares() > 0.0 ? 1.0 : 0.0;
            break;
          default:
            return Status::InvalidArgument("not a pair measure");
        }
      } else {
        AFFINITY_ASSIGN_OR_RETURN(
            value, BlendedPairValue(request.measure, request.ids[i], request.ids[j]));
      }
      out.pair_values(i, j) = value;
      out.pair_values(j, i) = value;
    }
  }
  return out;
}

namespace {

// Quality stamps for snapshot-served answers (DESIGN.md §12). The serving
// replica carries no quality surface (it bounces min_quality > 0 to the
// live engine), but `quality_scores_` is refreshed at exactly the
// publication points — so the live surface is as-of the served epoch and
// the facade can stamp the answer the live engine would have produced.

double FoldSeriesScore(const std::vector<double>& scores, ts::SeriesId v, double acc) {
  return v < scores.size() ? std::min(acc, scores[v]) : acc;
}

void StampSelectionQuality(const std::vector<double>& scores, SelectionResult* out) {
  out->quality.populated = true;
  double lo = 1.0;
  for (const ts::SeriesId v : out->series) lo = FoldSeriesScore(scores, v, lo);
  for (const ts::SequencePair& p : out->pairs) {
    lo = FoldSeriesScore(scores, p.u, lo);
    lo = FoldSeriesScore(scores, p.v, lo);
  }
  out->quality.min_score = lo;
}

void StampTopKQuality(const std::vector<double>& scores, TopKResult* out) {
  out->quality.populated = true;
  double lo = 1.0;
  for (const ScapeTopKEntry& e : out->entries) {
    if (e.has_series()) {
      lo = FoldSeriesScore(scores, e.series, lo);
    } else {
      lo = FoldSeriesScore(scores, e.pair.u, lo);
      lo = FoldSeriesScore(scores, e.pair.v, lo);
    }
  }
  out->quality.min_score = lo;
}

void StampMecQuality(const std::vector<double>& scores, const std::vector<ts::SeriesId>& ids,
                     MecResponse* out) {
  out->quality.populated = true;
  double lo = 1.0;
  for (const ts::SeriesId v : ids) lo = FoldSeriesScore(scores, v, lo);
  out->quality.min_score = lo;
}

}  // namespace

StatusOr<bool> StreamingAffinity::PrepareFreshness(const FreshnessOptions& options,
                                                   FreshnessReport* report) const {
  // Zero the report unconditionally first: every exit of every freshness
  // query path — the readiness error included — leaves the caller's
  // report in a defined state instead of whatever it last held.
  if (report != nullptr) *report = FreshnessReport{};
  if (!ready()) return Status::FailedPrecondition("no snapshot yet (need window rows)");
  const bool blend = NeedsBlend(options);
  if (report != nullptr) *report = FreshnessReport{snapshot_age(), blend};
  return blend;
}

StatusOr<MecResponse> StreamingAffinity::Mec(const MecRequest& request,
                                             const FreshnessOptions& options,
                                             FreshnessReport* report) const {
  AFFINITY_ASSIGN_OR_RETURN(const bool blend, PrepareFreshness(options, report));
  if (!blend) {
    // Serve from the published replica when one exists (the live
    // structures only change at publication points, so the snapshot is
    // the live state — answers are bitwise identical). kUnavailable is
    // the snapshot's "cannot serve this" verdict; everything else is the
    // final answer, success or error.
    if (auto snap = serving(); snap != nullptr) {
      auto served = serve::SnapshotMec(*snap, request, options.method);
      if (served.ok()) {
        StampMecQuality(quality_scores_, request.ids, &*served);
        return served;
      }
      if (served.status().code() != StatusCode::kUnavailable) return served;
      serve_fallbacks_->fetch_add(1, std::memory_order_relaxed);
    }
    return framework_->engine().Mec(request, options.method);
  }
  AFFINITY_ASSIGN_OR_RETURN(MecResponse out, BlendedMec(request));
  out.plan = BlendPlan();
  return out;
}

StatusOr<SelectionResult> StreamingAffinity::Met(const MetRequest& request,
                                                 const FreshnessOptions& options,
                                                 FreshnessReport* report) const {
  AFFINITY_ASSIGN_OR_RETURN(const bool blend, PrepareFreshness(options, report));
  if (!blend) {
    if (auto snap = serving(); snap != nullptr) {
      auto served = serve::SnapshotMet(*snap, request, options.method);
      if (served.ok()) {
        StampSelectionQuality(quality_scores_, &*served);
        return served;
      }
      if (served.status().code() != StatusCode::kUnavailable) return served;
      serve_fallbacks_->fetch_add(1, std::memory_order_relaxed);
    }
    return framework_->engine().Met(request, options.method);
  }
  AFFINITY_ASSIGN_OR_RETURN(
      SelectionResult out,
      BlendedSelect(request.measure, request.greater ? KeepGreater : KeepLesser, request.tau,
                    0.0));
  out.plan = BlendPlan();
  return out;
}

StatusOr<SelectionResult> StreamingAffinity::Mer(const MerRequest& request,
                                                 const FreshnessOptions& options,
                                                 FreshnessReport* report) const {
  AFFINITY_ASSIGN_OR_RETURN(const bool blend, PrepareFreshness(options, report));
  if (request.lo > request.hi) return Status::InvalidArgument("MER requires lo <= hi");
  if (!blend) {
    if (auto snap = serving(); snap != nullptr) {
      auto served = serve::SnapshotMer(*snap, request, options.method);
      if (served.ok()) {
        StampSelectionQuality(quality_scores_, &*served);
        return served;
      }
      if (served.status().code() != StatusCode::kUnavailable) return served;
      serve_fallbacks_->fetch_add(1, std::memory_order_relaxed);
    }
    return framework_->engine().Mer(request, options.method);
  }
  AFFINITY_ASSIGN_OR_RETURN(SelectionResult out,
                            BlendedSelect(request.measure, KeepInside, request.lo, request.hi));
  out.plan = BlendPlan();
  return out;
}

StatusOr<TopKResult> StreamingAffinity::TopK(const TopKRequest& request,
                                             const FreshnessOptions& options,
                                             FreshnessReport* report) const {
  AFFINITY_ASSIGN_OR_RETURN(const bool blend, PrepareFreshness(options, report));
  if (!blend) {
    if (auto snap = serving(); snap != nullptr) {
      auto served = serve::SnapshotTopK(*snap, request, options.method);
      if (served.ok()) {
        StampTopKQuality(quality_scores_, &*served);
        return served;
      }
      if (served.status().code() != StatusCode::kUnavailable) return served;
      serve_fallbacks_->fetch_add(1, std::memory_order_relaxed);
    }
    return framework_->engine().TopK(request, options.method);
  }
  AFFINITY_ASSIGN_OR_RETURN(TopKResult out, BlendedTopK(request));
  out.plan = BlendPlan();
  return out;
}

}  // namespace affinity::core
