#ifndef AFFINITY_CORE_QUALITY_H_
#define AFFINITY_CORE_QUALITY_H_

/// \file quality.h
/// Model-quality diagnostics (extension).
///
/// The WA/SCAPE answers are only as good as the affine relationships; this
/// module quantifies their quality the way §3 motivates it: relative fit
/// residuals ‖Se − (Op·Ae + 1·beᵀ)‖_F / ‖Ŝe‖_F over (a sample of) sequence
/// pairs, LSFD between pivot and sequence matrices, cluster balance, and
/// projection errors. Operators use the report to pick k (the paper's Fig.
/// 9/10 trade-off) without running a full accuracy sweep.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/symex.h"

namespace affinity::core {

/// Summary statistics of the affine-relationship quality of a model.
struct ModelQualityReport {
  std::size_t relationships = 0;
  std::size_t pivots = 0;
  std::size_t sampled_pairs = 0;  ///< pairs whose residual/LSFD was measured

  /// Relative fit residual ‖Se − fit‖_F / ‖centered Se‖_F, over the sample.
  double mean_relative_residual = 0;
  double p95_relative_residual = 0;
  double max_relative_residual = 0;

  /// LSFD(Op, Se) normalized by ‖centered Se‖_F, over the sample.
  double mean_relative_lsfd = 0;

  /// Per-cluster member counts (size k).
  std::vector<std::size_t> cluster_sizes;

  /// Mean orthogonal projection error of series onto their centres,
  /// relative to the series norm (AFCLST's objective).
  double mean_relative_projection_error = 0;
};

/// Evaluates model quality on up to `sample_pairs` uniformly sampled
/// sequence pairs (deterministic given `seed`). O(sample_pairs · m).
StatusOr<ModelQualityReport> EvaluateModelQuality(const AffinityModel& model,
                                                  std::size_t sample_pairs = 1000,
                                                  std::uint64_t seed = 1);

}  // namespace affinity::core

#endif  // AFFINITY_CORE_QUALITY_H_
