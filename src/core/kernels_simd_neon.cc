/// NEON specializations of the chain kernels for aarch64, where 128-bit
/// vectors are baseline (no extra compile flags). A lane pair rides one
/// 128-bit register, so an accumulator is two registers: slots {0,1} are
/// canonical lanes 0–1, slots {2,3} lanes 2–3 — the same slot-per-lane
/// mapping as the 256-bit AVX2 path, hence the same bitwise-identity
/// argument (kernels_simd_inl.h). vmulq+vaddq only, never vfmaq: the
/// scalar chains round the multiply and the add separately.

#include "core/kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "core/kernels_simd_inl.h"

namespace affinity::core::kernels {
namespace {

struct NeonTraits {
  struct Acc {
    float64x2_t lo;  // canonical lanes 0, 1
    float64x2_t hi;  // canonical lanes 2, 3
  };
  static Acc Zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static void Store(double* lanes, Acc a) {
    vst1q_f64(lanes, a.lo);
    vst1q_f64(lanes + 2, a.hi);
  }
};

using Acc = NeonTraits::Acc;

inline Acc Load(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }

inline void AddTo(Acc& acc, Acc v) {
  acc.lo = vaddq_f64(acc.lo, v.lo);
  acc.hi = vaddq_f64(acc.hi, v.hi);
}

inline Acc Mul(Acc a, Acc b) {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}

template <int kChains, class VecStep, class Term>
inline void Run(std::size_t m, std::size_t anchor, double* out, const VecStep& vstep,
                const Term& term) {
  simd::AccumulateVec<kChains, NeonTraits>(m, anchor, out, vstep, term);
}

double NeonBlockedSum(const double* x, std::size_t m, std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  double out;
  Run<1>(
      m, anchor, &out,
      [x, dist](std::size_t i, Acc acc[1]) {
        if (dist != 0) __builtin_prefetch(x + i + dist);
        AddTo(acc[0], Load(x + i));
      },
      [x](std::size_t i, double* v) { v[0] = x[i]; });
  return out;
}

double NeonBlockedDot(const double* x, const double* y, std::size_t m, std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  double out;
  Run<1>(
      m, anchor, &out,
      [x, y, dist](std::size_t i, Acc acc[1]) {
        if (dist != 0) {
          __builtin_prefetch(x + i + dist);
          __builtin_prefetch(y + i + dist);
        }
        AddTo(acc[0], Mul(Load(x + i), Load(y + i)));
      },
      [x, y](std::size_t i, double* v) { v[0] = x[i] * y[i]; });
  return out;
}

Marginals NeonColumnMarginals(const double* x, std::size_t m, std::size_t anchor) {
  Marginals out;
  if (m == 0) return out;
  const std::size_t dist = PrefetchDistance();
  // min/max are order-independent; packed ties on ±0.0 are value-equal to
  // the scalar compare chain (kernels.h).
  double lo = x[0], hi = x[0];
  float64x2_t vlo = vdupq_n_f64(x[0]);
  float64x2_t vhi = vlo;
  double sums[2];
  Run<2>(
      m, anchor, sums,
      [x, dist, &vlo, &vhi](std::size_t i, Acc acc[2]) {
        if (dist != 0) __builtin_prefetch(x + i + dist);
        const Acc vx = Load(x + i);
        AddTo(acc[0], vx);
        AddTo(acc[1], Mul(vx, vx));
        vlo = vminq_f64(vminq_f64(vlo, vx.lo), vx.hi);
        vhi = vmaxq_f64(vmaxq_f64(vhi, vx.lo), vx.hi);
      },
      [x, &lo, &hi](std::size_t i, double* v) {
        const double xi = x[i];
        v[0] = xi;
        v[1] = xi * xi;
        lo = xi < lo ? xi : lo;
        hi = xi > hi ? xi : hi;
      });
  double fold[2];
  vst1q_f64(fold, vlo);
  for (double f : fold) lo = f < lo ? f : lo;
  vst1q_f64(fold, vhi);
  for (double f : fold) hi = f > hi ? f : hi;
  out.sum = sums[0];
  out.sumsq = sums[1];
  out.min = lo;
  out.max = hi;
  return out;
}

void NeonFusedDot3(const double* x, const double* y, std::size_t m, double* dot_xy,
                   double* dot_xx, double* dot_yy, std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  double out[3];
  Run<3>(
      m, anchor, out,
      [x, y, dist](std::size_t i, Acc acc[3]) {
        if (dist != 0) {
          __builtin_prefetch(x + i + dist);
          __builtin_prefetch(y + i + dist);
        }
        const Acc vx = Load(x + i);
        const Acc vy = Load(y + i);
        AddTo(acc[0], Mul(vx, vy));
        AddTo(acc[1], Mul(vx, vx));
        AddTo(acc[2], Mul(vy, vy));
      },
      [x, y](std::size_t i, double* v) {
        v[0] = x[i] * y[i];
        v[1] = x[i] * x[i];
        v[2] = y[i] * y[i];
      });
  *dot_xy = out[0];
  *dot_xx = out[1];
  *dot_yy = out[2];
}

void NeonFusedCross3(const double* c1, const double* c2, const double* t, std::size_t m,
                     double* out, std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  Run<3>(
      m, anchor, out,
      [c1, c2, t, dist](std::size_t i, Acc acc[3]) {
        if (dist != 0) {
          __builtin_prefetch(c1 + i + dist);
          __builtin_prefetch(c2 + i + dist);
          __builtin_prefetch(t + i + dist);
        }
        const Acc vt = Load(t + i);
        AddTo(acc[0], Mul(Load(c1 + i), vt));
        AddTo(acc[1], Mul(Load(c2 + i), vt));
        AddTo(acc[2], vt);
      },
      [c1, c2, t](std::size_t i, double* v) {
        v[0] = c1[i] * t[i];
        v[1] = c2[i] * t[i];
        v[2] = t[i];
      });
}

void NeonFusedGram5(const double* c1, const double* c2, std::size_t m, double* out,
                    std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  Run<5>(
      m, anchor, out,
      [c1, c2, dist](std::size_t i, Acc acc[5]) {
        if (dist != 0) {
          __builtin_prefetch(c1 + i + dist);
          __builtin_prefetch(c2 + i + dist);
        }
        const Acc v1 = Load(c1 + i);
        const Acc v2 = Load(c2 + i);
        AddTo(acc[0], Mul(v1, v1));
        AddTo(acc[1], Mul(v1, v2));
        AddTo(acc[2], Mul(v2, v2));
        AddTo(acc[3], v1);
        AddTo(acc[4], v2);
      },
      [c1, c2](std::size_t i, double* v) {
        v[0] = c1[i] * c1[i];
        v[1] = c1[i] * c2[i];
        v[2] = c2[i] * c2[i];
        v[3] = c1[i];
        v[4] = c2[i];
      });
}

void NeonFusedPairMoments(const double* x, const double* y, std::size_t m, double* out,
                          std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  Run<5>(
      m, anchor, out,
      [x, y, dist](std::size_t i, Acc acc[5]) {
        if (dist != 0) {
          __builtin_prefetch(x + i + dist);
          __builtin_prefetch(y + i + dist);
        }
        const Acc vx = Load(x + i);
        const Acc vy = Load(y + i);
        AddTo(acc[0], vx);
        AddTo(acc[1], Mul(vx, vx));
        AddTo(acc[2], vy);
        AddTo(acc[3], Mul(vy, vy));
        AddTo(acc[4], Mul(vx, vy));
      },
      [x, y](std::size_t i, double* v) {
        v[0] = x[i];
        v[1] = x[i] * x[i];
        v[2] = y[i];
        v[3] = y[i] * y[i];
        v[4] = x[i] * y[i];
      });
}

constexpr BackendOps kNeonOps = {
    Backend::kNeon,        "neon",
    &NeonBlockedSum,       &NeonBlockedDot,       &NeonColumnMarginals,
    &NeonFusedDot3,        &NeonFusedCross3,      &NeonFusedGram5,
    &NeonFusedPairMoments,
};

}  // namespace

const BackendOps* NeonOps() { return &kNeonOps; }

}  // namespace affinity::core::kernels

#else  // !defined(__aarch64__)

namespace affinity::core::kernels {

const BackendOps* NeonOps() { return nullptr; }

}  // namespace affinity::core::kernels

#endif  // defined(__aarch64__)
