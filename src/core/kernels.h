#ifndef AFFINITY_CORE_KERNELS_H_
#define AFFINITY_CORE_KERNELS_H_

/// \file kernels.h
/// The hot-path summation kernels behind every naive pair sweep, the
/// SYMEX+/incremental fit accumulators, and the shard router's cross-pair
/// evaluation (DESIGN.md §10).
///
/// All kernels accumulate in one **canonical blocked order**: the input is
/// cut into fixed blocks of `kBlockElems` elements; within a block, four
/// independent lanes (`kLanes`) accumulate stride-4 element groups (the
/// classic unroll that breaks the FP dependency chain and lets the
/// compiler SLP-vectorize without -ffast-math); a block reduces as
/// `(l0 + l1) + (l2 + l3)`; block partials add sequentially.
///
/// **Anchored grid.** The block cuts sit on an absolute grid: a window
/// whose first sample is stream row `anchor` is cut at the absolute rows
/// that are multiples of `kBlockElems`, so the order is a function of
/// `(anchor mod kBlockElems, m)` alone — never of thread count, pointer
/// alignment, or which fused kernel runs the chain. An `anchor` of 0 (the
/// default everywhere) reproduces the historic length-only order exactly.
/// The grid buys:
///
///  * every sweep is bitwise identical at any thread count (§7);
///  * **chain equality**: the Σx² chain of `FusedDot3(x, y, m, a)` is
///    bitwise equal to `BlockedDot(x, x, m, a)` and to the `sumsq` chain
///    of `ColumnMarginals(x, m, a)`. Marginal hoisting (compute Σx, Σx²
///    once per column, then one fused Σxy pass per pair) therefore
///    reproduces the single fused per-pair pass bit for bit;
///  * **slide stability**: a grid block fully inside the window sums a
///    fixed set of stream rows in a fixed internal order, so its partial
///    is a pure function of those samples. Sliding the window forward
///    leaves every still-covered interior block partial bit-identical —
///    `BlockChain` below retains them, and an incremental refresh only
///    recomputes the partial blocks the slide actually touched
///    (O(interval + kBlockElems) per chain instead of O(window)).
///
/// The primitive layer is header-only on purpose: `ts/stats` and
/// `ts/rolling` sit *below* core in the link order but must share the
/// canonical accumulation order (DotProduct, RollingCrossSums::Reset);
/// inline definitions give them that without a link cycle. Batch helpers
/// that need `ExecContext` live in kernels.cc.

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace affinity {
struct ExecContext;
namespace ts {
class DataMatrix;
}  // namespace ts
}  // namespace affinity

namespace affinity::core::kernels {

/// Fixed accumulation block, in elements. Changing this changes the bits
/// of every sum in the system — bump only with a DESIGN.md §10 note.
inline constexpr std::size_t kBlockElems = 1024;

/// Independent accumulator lanes per chain (the unroll width).
inline constexpr std::size_t kLanes = 4;
static_assert(kBlockElems % kLanes == 0,
              "grid blocks must start on a lane boundary so a block partial "
              "is a pure function of its samples");

namespace detail {

/// Accumulates `kChains` independent lane sets over the span
/// [begin, end) of the window, adding each element at window-relative
/// index i into lane (i - begin) % kLanes. The per-lane addition order is
/// increasing i — exactly the order `BlockChain` appends trailing
/// elements in, which is what makes a lane state resumable.
template <int kChains, class Term>
inline void AccumulateSpan(std::size_t begin, std::size_t end, const Term& term,
                           double lanes[kChains][kLanes]) {
  std::size_t i = begin;
  for (; i + kLanes <= end; i += kLanes) {
    double v0[kChains], v1[kChains], v2[kChains], v3[kChains];
    term(i, v0);
    term(i + 1, v1);
    term(i + 2, v2);
    term(i + 3, v3);
    for (int c = 0; c < kChains; ++c) {
      lanes[c][0] += v0[c];
      lanes[c][1] += v1[c];
      lanes[c][2] += v2[c];
      lanes[c][3] += v3[c];
    }
  }
  for (std::size_t l = 0; i < end; ++i, ++l) {
    double v[kChains];
    term(i, v);
    for (int c = 0; c < kChains; ++c) lanes[c][l] += v[c];
  }
}

/// Accumulates `kChains` independent sums over [0, m) in the canonical
/// anchored blocked order. `term(i, v)` writes the i-th element of every
/// chain into v[0..kChains). The window's first element sits at absolute
/// stream row `anchor`; spans are cut where (anchor + i) crosses a
/// multiple of kBlockElems. Each chain's reduction order is a function of
/// (anchor mod kBlockElems, m) alone, so any two kernels running the same
/// chain at the same anchor agree bitwise.
template <int kChains, class Term>
inline void Accumulate(std::size_t m, const Term& term, double* out, std::size_t anchor = 0) {
  for (int c = 0; c < kChains; ++c) out[c] = 0.0;
  const std::size_t phase = anchor % kBlockElems;
  std::size_t base = 0;
  std::size_t end = kBlockElems - phase < m ? kBlockElems - phase : m;
  while (base < m) {
    double lanes[kChains][kLanes] = {};
    AccumulateSpan<kChains>(base, end, term, lanes);
    for (int c = 0; c < kChains; ++c) {
      out[c] += (lanes[c][0] + lanes[c][1]) + (lanes[c][2] + lanes[c][3]);
    }
    base = end;
    end = base + kBlockElems < m ? base + kBlockElems : m;
  }
}

}  // namespace detail

/// Σ xᵢ in the canonical blocked order.
inline double BlockedSum(const double* x, std::size_t m, std::size_t anchor = 0) {
  double out;
  detail::Accumulate<1>(m, [x](std::size_t i, double* v) { v[0] = x[i]; }, &out, anchor);
  return out;
}

/// Σ xᵢyᵢ in the canonical blocked order.
inline double BlockedDot(const double* x, const double* y, std::size_t m,
                         std::size_t anchor = 0) {
  double out;
  detail::Accumulate<1>(m, [x, y](std::size_t i, double* v) { v[0] = x[i] * y[i]; }, &out,
                        anchor);
  return out;
}

/// Per-column marginals of one pass: Σx, Σx², min, max. The sum/sumsq
/// chains equal `BlockedSum(x)` / `BlockedDot(x, x)` bitwise; min/max are
/// order-independent. Empty columns report all-zero marginals.
struct Marginals {
  double sum = 0.0;
  double sumsq = 0.0;
  double min = 0.0;
  double max = 0.0;
};

inline Marginals ColumnMarginals(const double* x, std::size_t m, std::size_t anchor = 0) {
  Marginals out;
  if (m == 0) return out;
  // min/max ride the same single pass inside the term callback (each
  // element is visited exactly once); they are order-independent, so the
  // sum/sumsq chains stay bitwise equal to BlockedSum/BlockedDot.
  double lo = x[0], hi = x[0];
  double sums[2];
  detail::Accumulate<2>(
      m,
      [x, &lo, &hi](std::size_t i, double* v) {
        const double xi = x[i];
        v[0] = xi;
        v[1] = xi * xi;
        lo = xi < lo ? xi : lo;
        hi = xi > hi ? xi : hi;
      },
      sums, anchor);
  out.sum = sums[0];
  out.sumsq = sums[1];
  out.min = lo;
  out.max = hi;
  return out;
}

/// Σxy, Σx², Σy² in one fused pass — the per-pair cost of every derived
/// measure once the marginals are hoisted elsewhere.
inline void FusedDot3(const double* x, const double* y, std::size_t m, double* dot_xy,
                      double* dot_xx, double* dot_yy, std::size_t anchor = 0) {
  double out[3];
  detail::Accumulate<3>(
      m,
      [x, y](std::size_t i, double* v) {
        v[0] = x[i] * y[i];
        v[1] = x[i] * x[i];
        v[2] = y[i] * y[i];
      },
      out, anchor);
  *dot_xy = out[0];
  *dot_xx = out[1];
  *dot_yy = out[2];
}

/// The normal-equation right-hand side (Σc1·t, Σc2·t, Σt) in one fused
/// pass — shared by the SYMEX+ build fit (fit_kernels.h) and the
/// incremental accumulator re-materialization (RollingCrossSums::Reset),
/// which must agree bitwise (DESIGN.md §8).
inline void FusedCross3(const double* c1, const double* c2, const double* t, std::size_t m,
                        double out[3], std::size_t anchor = 0) {
  detail::Accumulate<3>(
      m,
      [c1, c2, t](std::size_t i, double* v) {
        v[0] = c1[i] * t[i];
        v[1] = c2[i] * t[i];
        v[2] = t[i];
      },
      out, anchor);
}

/// The five Gram sums of the design [c1, c2, 1m] — s11, s12, s22, h1, h2
/// — in one fused pass. Chain-equal to ColumnMarginals/BlockedDot over
/// the same columns, which is what lets `GramFromMeasures` (assembled
/// from hoisted pivot measures) match `ComputeGram` bit for bit.
inline void FusedGram5(const double* c1, const double* c2, std::size_t m, double out[5],
                       std::size_t anchor = 0) {
  detail::Accumulate<5>(
      m,
      [c1, c2](std::size_t i, double* v) {
        v[0] = c1[i] * c1[i];
        v[1] = c1[i] * c2[i];
        v[2] = c2[i] * c2[i];
        v[3] = c1[i];
        v[4] = c2[i];
      },
      out, anchor);
}

/// Σx, Σx², Σy, Σy², Σxy in one fused pass — the full co-moment set of a
/// pair, from which every T/D pair measure is computable without touching
/// the raw columns again (core::PairMeasureFromMoments). Chain-equal to
/// ColumnMarginals(x/y) + BlockedDot(x, y).
inline void FusedPairMoments(const double* x, const double* y, std::size_t m, double out[5],
                             std::size_t anchor = 0) {
  detail::Accumulate<5>(
      m,
      [x, y](std::size_t i, double* v) {
        v[0] = x[i];
        v[1] = x[i] * x[i];
        v[2] = y[i];
        v[3] = y[i] * y[i];
        v[4] = x[i] * y[i];
      },
      out, anchor);
}

// --- Retained block partials (DESIGN.md §10) -------------------------------

/// Per-refresh accounting of a retained-partial update: how many grid
/// blocks were recomputed or freshly completed versus served from the
/// cache. Reported through MaintenanceProfile and bench_streaming.
struct BlockSpanStats {
  std::size_t touched = 0;  ///< partial/leading spans recomputed + blocks completed
  std::size_t reused = 0;   ///< interior block partials reused bit-for-bit

  void Add(const BlockSpanStats& o) {
    touched += o.touched;
    reused += o.reused;
  }
};

/// Retained block partials of `kChains` fused canonical chains over one
/// sliding window (the BlockPartialCache unit). The chain remembers, for
/// the window [anchor, anchor + window) it last produced totals for:
///
///  * `interior_`: the reduced partial of every grid block fully inside
///    the window (kChains values per block, block order), and
///  * the **lane state of the trailing partial block** — the four
///    unreduced lane sums over the elements accumulated into the grid
///    block the window currently ends inside.
///
/// `SlideTo(new_anchor, term, out)` advances the window and produces
/// totals bitwise identical to a cold anchored `Accumulate` over the new
/// window, by construction: interior partials are pure functions of their
/// samples (reused), appended samples extend the trailing lane state in
/// the exact cold order (lane = in-block offset mod kLanes, increasing),
/// and only the leading partial block — whose left edge the slide moved —
/// is recomputed from the raw window. Ownership and invalidation live in
/// IncrementalMaintainer: the chain is dropped whenever the structure it
/// sums over changes (escalation, rebuild, restore).
template <int kChains>
class BlockChain {
 public:
  BlockChain() = default;

  bool initialized() const { return init_; }
  std::size_t anchor() const { return anchor_; }
  std::size_t window() const { return window_; }

  /// Advances the retained state to the window [new_anchor, new_anchor +
  /// window) and writes its canonical totals. `term(i, v)` must read the
  /// *current* window buffer at window-relative index i ∈ [0, window).
  /// Falls back to a cold rebuild when uninitialized, when the window
  /// length changed, when the slide moved backwards, or when the slide
  /// covers the whole window (nothing to retain).
  template <class Term>
  void SlideTo(std::size_t new_anchor, std::size_t window, const Term& term,
               double out[kChains], BlockSpanStats* stats = nullptr) {
    if (!init_ || window != window_ || new_anchor < anchor_ || new_anchor - anchor_ >= window) {
      Rebuild(new_anchor, window, term, stats);
    } else {
      Advance(new_anchor, term, stats);
    }
    Totals(term, out, stats);
  }

  /// Drops all retained state (the next SlideTo rebuilds cold).
  void Invalidate() { init_ = false; }

 private:
  static std::size_t FirstGrid(std::size_t anchor) {
    return (anchor + kBlockElems - 1) / kBlockElems;
  }

  /// Cold start: retain interiors and trailing lanes for [anchor, anchor+w).
  template <class Term>
  void Rebuild(std::size_t anchor, std::size_t window, const Term& term,
               BlockSpanStats* stats) {
    anchor_ = anchor;
    window_ = window;
    interior_.clear();
    lane_block_ = FirstGrid(anchor);
    trailing_len_ = 0;
    for (int c = 0; c < kChains; ++c) {
      for (std::size_t l = 0; l < kLanes; ++l) lanes_[c][l] = 0.0;
    }
    init_ = true;
    Append(term, stats);
  }

  /// Warm slide: drop evicted interiors, extend the tail with the
  /// appended samples, keep everything in between untouched.
  template <class Term>
  void Advance(std::size_t new_anchor, const Term& term, BlockSpanStats* stats) {
    const std::size_t gf = FirstGrid(new_anchor);
    // Interiors that slid out of the window (their block now starts
    // before the new first grid row).
    const std::size_t have = interior_.size() / kChains;
    const std::size_t first_block = lane_block_ - have;
    const std::size_t drop = gf > first_block ? (gf - first_block < have ? gf - first_block : have)
                                              : 0;
    if (drop > 0) {
      interior_.erase(interior_.begin(),
                      interior_.begin() + static_cast<std::ptrdiff_t>(drop * kChains));
    }
    if (lane_block_ < gf) {
      // The old trailing block itself was evicted (a multi-refresh gap):
      // discard its lane state and restart coverage at the new grid.
      AFFINITY_DCHECK(interior_.empty());
      lane_block_ = gf;
      trailing_len_ = 0;
      for (int c = 0; c < kChains; ++c) {
        for (std::size_t l = 0; l < kLanes; ++l) lanes_[c][l] = 0.0;
      }
    }
    if (stats != nullptr) stats->reused += interior_.size() / kChains;
    anchor_ = new_anchor;
    Append(term, stats);
  }

  /// Extends coverage from the retained end to the window end, completing
  /// grid blocks as they fill. Lane assignment is the in-block offset mod
  /// kLanes in increasing row order — the cold AccumulateSpan order, so a
  /// block completed across several slides reduces to the identical bits.
  template <class Term>
  void Append(const Term& term, BlockSpanStats* stats) {
    const std::size_t end_abs = anchor_ + window_;
    std::size_t a = lane_block_ * kBlockElems + trailing_len_;
    while (a < end_abs) {
      const std::size_t block_end = (lane_block_ + 1) * kBlockElems;
      const std::size_t stop = block_end < end_abs ? block_end : end_abs;
      double v[kChains];
      for (; a < stop; ++a) {
        term(a - anchor_, v);
        const std::size_t lane = (a % kBlockElems) % kLanes;
        for (int c = 0; c < kChains; ++c) lanes_[c][lane] += v[c];
      }
      trailing_len_ = a - lane_block_ * kBlockElems;
      if (trailing_len_ == kBlockElems) {
        for (int c = 0; c < kChains; ++c) {
          interior_.push_back((lanes_[c][0] + lanes_[c][1]) + (lanes_[c][2] + lanes_[c][3]));
          for (std::size_t l = 0; l < kLanes; ++l) lanes_[c][l] = 0.0;
        }
        ++lane_block_;
        trailing_len_ = 0;
        if (stats != nullptr) ++stats->touched;
      }
    }
  }

  /// Re-reduces leading + interiors + trailing lanes in the canonical
  /// span order. The leading partial block (present when the anchor is
  /// off-grid) is the one span whose left edge every slide moves, so it
  /// is recomputed from the raw window here.
  template <class Term>
  void Totals(const Term& term, double out[kChains], BlockSpanStats* stats) {
    const std::size_t gf = FirstGrid(anchor_);
    const std::size_t lead_end_abs = gf * kBlockElems < anchor_ + window_
                                         ? gf * kBlockElems
                                         : anchor_ + window_;
    for (int c = 0; c < kChains; ++c) out[c] = 0.0;
    if (lead_end_abs > anchor_) {
      double lead[kChains][kLanes] = {};
      detail::AccumulateSpan<kChains>(0, lead_end_abs - anchor_, term, lead);
      for (int c = 0; c < kChains; ++c) {
        out[c] += (lead[c][0] + lead[c][1]) + (lead[c][2] + lead[c][3]);
      }
      if (stats != nullptr) ++stats->touched;
    }
    // The cache re-anchor invariant: retained coverage must tile the rest
    // of the window exactly — interiors for every fully covered grid
    // block, the trailing lane state for the remainder. A window that
    // never reaches the grid (it sits inside one block) has no retained
    // coverage at all: the leading span above was the whole window.
    const std::size_t have = interior_.size() / kChains;
    if (gf * kBlockElems >= anchor_ + window_) {
      AFFINITY_CHECK(have == 0 && trailing_len_ == 0);
      return;
    }
    const std::size_t ge = (anchor_ + window_) / kBlockElems;
    AFFINITY_CHECK(lane_block_ == ge && have == ge - gf);
    AFFINITY_CHECK_EQ(lane_block_ * kBlockElems + trailing_len_, anchor_ + window_);
    for (std::size_t b = 0; b < have; ++b) {
      for (int c = 0; c < kChains; ++c) out[c] += interior_[b * kChains + c];
    }
    if (trailing_len_ > 0) {
      for (int c = 0; c < kChains; ++c) {
        out[c] += (lanes_[c][0] + lanes_[c][1]) + (lanes_[c][2] + lanes_[c][3]);
      }
      if (stats != nullptr) ++stats->touched;
    }
  }

  std::size_t anchor_ = 0;
  std::size_t window_ = 0;
  /// Reduced partials of the fully covered grid blocks, kChains values
  /// per block in block order; the first retained block is
  /// `lane_block_ - interior_.size() / kChains`.
  std::vector<double> interior_;
  /// Grid index of the block the lane state accumulates, and how many of
  /// its elements are folded in so far.
  std::size_t lane_block_ = 0;
  std::size_t trailing_len_ = 0;
  double lanes_[kChains][kLanes] = {};
  bool init_ = false;
};

// --- Batch helpers (kernels.cc) --------------------------------------------

/// Marginals of every column of `data`, hoisted once per query as a
/// deterministic chunked parallel loop (one chain per column, so the
/// result is thread-count invariant). Runs at the matrix's block-grid
/// anchor.
std::vector<Marginals> HoistMarginals(const ts::DataMatrix& data, const ExecContext& exec);

/// As above over an explicit column list (the shard router's resolved
/// cross-pair columns), all of length `m` anchored at `anchor`.
std::vector<Marginals> HoistMarginals(const std::vector<const double*>& columns, std::size_t m,
                                      const ExecContext& exec, std::size_t anchor = 0);

}  // namespace affinity::core::kernels

#endif  // AFFINITY_CORE_KERNELS_H_
