#ifndef AFFINITY_CORE_KERNELS_H_
#define AFFINITY_CORE_KERNELS_H_

/// \file kernels.h
/// The hot-path summation kernels behind every naive pair sweep, the
/// SYMEX+/incremental fit accumulators, and the shard router's cross-pair
/// evaluation (DESIGN.md §10).
///
/// All kernels accumulate in one **canonical blocked order**: the input is
/// cut into fixed blocks of `kBlockElems` elements; within a block, four
/// independent lanes (`kLanes`) accumulate stride-4 element groups (the
/// classic unroll that breaks the FP dependency chain and lets the
/// compiler SLP-vectorize without -ffast-math); a block reduces as
/// `(l0 + l1) + (l2 + l3)`; block partials add sequentially. The order
/// depends only on the length `m` — never on thread count, pointer
/// alignment, or which fused kernel runs the chain — so:
///
///  * every sweep is bitwise identical at any thread count (§7), and
///  * **chain equality**: the Σx² chain of `FusedDot3(x, y)` is bitwise
///    equal to `BlockedDot(x, x)` and to the `sumsq` chain of
///    `ColumnMarginals(x)`. Marginal hoisting (compute Σx, Σx² once per
///    column, then one fused Σxy pass per pair) therefore reproduces the
///    single fused per-pair pass bit for bit.
///
/// The fixed block size is also the seam the ROADMAP's "bit-identity-
/// preserving blocked summation" for sliding dot12 needs: a slide that
/// only touches whole blocks can reuse untouched block partials without
/// changing a single bit of the total.
///
/// The primitive layer is header-only on purpose: `ts/stats` and
/// `ts/rolling` sit *below* core in the link order but must share the
/// canonical accumulation order (DotProduct, RollingCrossSums::Reset);
/// inline definitions give them that without a link cycle. Batch helpers
/// that need `ExecContext` live in kernels.cc.

#include <cstddef>
#include <vector>

namespace affinity {
struct ExecContext;
namespace ts {
class DataMatrix;
}  // namespace ts
}  // namespace affinity

namespace affinity::core::kernels {

/// Fixed accumulation block, in elements. Changing this changes the bits
/// of every sum in the system — bump only with a DESIGN.md §10 note.
inline constexpr std::size_t kBlockElems = 1024;

/// Independent accumulator lanes per chain (the unroll width).
inline constexpr std::size_t kLanes = 4;

namespace detail {

/// Accumulates `kChains` independent sums over [0, m) in the canonical
/// blocked order. `term(i, v)` writes the i-th element of every chain
/// into v[0..kChains). Each chain's reduction order is a function of `m`
/// alone, so any two kernels running the same chain agree bitwise.
template <int kChains, class Term>
inline void Accumulate(std::size_t m, const Term& term, double* out) {
  for (int c = 0; c < kChains; ++c) out[c] = 0.0;
  for (std::size_t base = 0; base < m; base += kBlockElems) {
    const std::size_t end = base + kBlockElems < m ? base + kBlockElems : m;
    double lanes[kChains][kLanes] = {};
    std::size_t i = base;
    for (; i + kLanes <= end; i += kLanes) {
      double v0[kChains], v1[kChains], v2[kChains], v3[kChains];
      term(i, v0);
      term(i + 1, v1);
      term(i + 2, v2);
      term(i + 3, v3);
      for (int c = 0; c < kChains; ++c) {
        lanes[c][0] += v0[c];
        lanes[c][1] += v1[c];
        lanes[c][2] += v2[c];
        lanes[c][3] += v3[c];
      }
    }
    for (std::size_t l = 0; i < end; ++i, ++l) {
      double v[kChains];
      term(i, v);
      for (int c = 0; c < kChains; ++c) lanes[c][l] += v[c];
    }
    for (int c = 0; c < kChains; ++c) {
      out[c] += (lanes[c][0] + lanes[c][1]) + (lanes[c][2] + lanes[c][3]);
    }
  }
}

}  // namespace detail

/// Σ xᵢ in the canonical blocked order.
inline double BlockedSum(const double* x, std::size_t m) {
  double out;
  detail::Accumulate<1>(m, [x](std::size_t i, double* v) { v[0] = x[i]; }, &out);
  return out;
}

/// Σ xᵢyᵢ in the canonical blocked order.
inline double BlockedDot(const double* x, const double* y, std::size_t m) {
  double out;
  detail::Accumulate<1>(m, [x, y](std::size_t i, double* v) { v[0] = x[i] * y[i]; }, &out);
  return out;
}

/// Per-column marginals of one pass: Σx, Σx², min, max. The sum/sumsq
/// chains equal `BlockedSum(x)` / `BlockedDot(x, x)` bitwise; min/max are
/// order-independent. Empty columns report all-zero marginals.
struct Marginals {
  double sum = 0.0;
  double sumsq = 0.0;
  double min = 0.0;
  double max = 0.0;
};

inline Marginals ColumnMarginals(const double* x, std::size_t m) {
  Marginals out;
  if (m == 0) return out;
  // min/max ride the same single pass inside the term callback (each
  // element is visited exactly once); they are order-independent, so the
  // sum/sumsq chains stay bitwise equal to BlockedSum/BlockedDot.
  double lo = x[0], hi = x[0];
  double sums[2];
  detail::Accumulate<2>(
      m,
      [x, &lo, &hi](std::size_t i, double* v) {
        const double xi = x[i];
        v[0] = xi;
        v[1] = xi * xi;
        lo = xi < lo ? xi : lo;
        hi = xi > hi ? xi : hi;
      },
      sums);
  out.sum = sums[0];
  out.sumsq = sums[1];
  out.min = lo;
  out.max = hi;
  return out;
}

/// Σxy, Σx², Σy² in one fused pass — the per-pair cost of every derived
/// measure once the marginals are hoisted elsewhere.
inline void FusedDot3(const double* x, const double* y, std::size_t m, double* dot_xy,
                      double* dot_xx, double* dot_yy) {
  double out[3];
  detail::Accumulate<3>(
      m,
      [x, y](std::size_t i, double* v) {
        v[0] = x[i] * y[i];
        v[1] = x[i] * x[i];
        v[2] = y[i] * y[i];
      },
      out);
  *dot_xy = out[0];
  *dot_xx = out[1];
  *dot_yy = out[2];
}

/// The normal-equation right-hand side (Σc1·t, Σc2·t, Σt) in one fused
/// pass — shared by the SYMEX+ build fit (fit_kernels.h) and the
/// incremental accumulator re-materialization (RollingCrossSums::Reset),
/// which must agree bitwise (DESIGN.md §8).
inline void FusedCross3(const double* c1, const double* c2, const double* t, std::size_t m,
                        double out[3]) {
  detail::Accumulate<3>(
      m,
      [c1, c2, t](std::size_t i, double* v) {
        v[0] = c1[i] * t[i];
        v[1] = c2[i] * t[i];
        v[2] = t[i];
      },
      out);
}

/// The five Gram sums of the design [c1, c2, 1m] — s11, s12, s22, h1, h2
/// — in one fused pass. Chain-equal to ColumnMarginals/BlockedDot over
/// the same columns, which is what lets `GramFromMeasures` (assembled
/// from hoisted pivot measures) match `ComputeGram` bit for bit.
inline void FusedGram5(const double* c1, const double* c2, std::size_t m, double out[5]) {
  detail::Accumulate<5>(
      m,
      [c1, c2](std::size_t i, double* v) {
        v[0] = c1[i] * c1[i];
        v[1] = c1[i] * c2[i];
        v[2] = c2[i] * c2[i];
        v[3] = c1[i];
        v[4] = c2[i];
      },
      out);
}

/// Σx, Σx², Σy, Σy², Σxy in one fused pass — the full co-moment set of a
/// pair, from which every T/D pair measure is computable without touching
/// the raw columns again (core::PairMeasureFromMoments). Chain-equal to
/// ColumnMarginals(x/y) + BlockedDot(x, y).
inline void FusedPairMoments(const double* x, const double* y, std::size_t m, double out[5]) {
  detail::Accumulate<5>(
      m,
      [x, y](std::size_t i, double* v) {
        v[0] = x[i];
        v[1] = x[i] * x[i];
        v[2] = y[i];
        v[3] = y[i] * y[i];
        v[4] = x[i] * y[i];
      },
      out);
}

// --- Batch helpers (kernels.cc) --------------------------------------------

/// Marginals of every column of `data`, hoisted once per query as a
/// deterministic chunked parallel loop (one chain per column, so the
/// result is thread-count invariant).
std::vector<Marginals> HoistMarginals(const ts::DataMatrix& data, const ExecContext& exec);

/// As above over an explicit column list (the shard router's resolved
/// cross-pair columns), all of length `m`.
std::vector<Marginals> HoistMarginals(const std::vector<const double*>& columns, std::size_t m,
                                      const ExecContext& exec);

}  // namespace affinity::core::kernels

#endif  // AFFINITY_CORE_KERNELS_H_
