#ifndef AFFINITY_CORE_KERNELS_H_
#define AFFINITY_CORE_KERNELS_H_

/// \file kernels.h
/// The hot-path summation kernels behind every naive pair sweep, the
/// SYMEX+/incremental fit accumulators, and the shard router's cross-pair
/// evaluation (DESIGN.md §10).
///
/// All kernels accumulate in one **canonical blocked order**: the input is
/// cut into fixed blocks of `kBlockElems` elements; within a block, four
/// independent lanes (`kLanes`) accumulate stride-4 element groups (the
/// classic unroll that breaks the FP dependency chain); a block reduces as
/// `(l0 + l1) + (l2 + l3)`; block partials add sequentially.
///
/// **Anchored grid.** The block cuts sit on an absolute grid: a window
/// whose first sample is stream row `anchor` is cut at the absolute rows
/// that are multiples of `kBlockElems`, so the order is a function of
/// `(anchor mod kBlockElems, m)` alone — never of thread count, pointer
/// alignment, or which fused kernel runs the chain. An `anchor` of 0 (the
/// default everywhere) reproduces the historic length-only order exactly.
/// The grid buys:
///
///  * every sweep is bitwise identical at any thread count (§7);
///  * **chain equality**: the Σx² chain of `FusedDot3(x, y, m, a)` is
///    bitwise equal to `BlockedDot(x, x, m, a)` and to the `sumsq` chain
///    of `ColumnMarginals(x, m, a)`. Marginal hoisting (compute Σx, Σx²
///    once per column, then one fused Σxy pass per pair) therefore
///    reproduces the single fused per-pair pass bit for bit;
///  * **slide stability**: a grid block fully inside the window sums a
///    fixed set of stream rows in a fixed internal order, so its partial
///    is a pure function of those samples. Sliding the window forward
///    leaves every still-covered interior block partial bit-identical —
///    `BlockChain` below retains them, and an incremental refresh only
///    recomputes the partial spans the slide actually touched
///    (O(interval + kPrefixStride) per chain instead of O(window)).
///
/// **Leading-span direction.** The one span whose *left* edge a slide
/// moves is the leading partial block (anchor off-grid). A left-to-right
/// lane walk of that span can never be resumed after its left edge
/// advances — left-associated sums don't support removal — so the
/// canonical order walks that single span **top-down**: from the first
/// grid row B = kBlockElems·⌈anchor/kBlockElems⌉ exclusive down to the
/// anchor, lane = (B − 1 − row) mod kLanes, per-lane addition in
/// decreasing row order, reduced `(l0+l1)+(l2+l3)` like any other span.
/// The lane state at row r is then a pure function of rows [r, B), which
/// is what makes the `BlockChain` prefix state below checkpointable and
/// resumable. A window that never reaches the grid (anchor + m ≤ B) is a
/// single reversed span based at anchor + m. Anchor 0 — the default on
/// every standalone path — has no leading span and keeps the historic
/// bits exactly.
///
/// **Backends.** The seven public kernels dispatch through a
/// runtime-selected `Backend` (scalar / AVX2 / NEON), resolved once from
/// CPU features and the `AFFINITY_KERNEL_BACKEND` env override. A lane is
/// exactly one 64-bit slot of a vector register (256-bit = the four
/// lanes; 128-bit ×2 on NEON), and the per-lane addition order is
/// element-index-deterministic, so vector mul+add (never FMA) reproduces
/// the scalar chains **bit for bit**. The scalar reference lives in
/// `kernels::scalar` and stays callable for cross-backend tests. min/max
/// marginals are value-equal across backends (a ±0.0 tie may resolve to
/// the other sign bit); all sum chains are bit-equal.
///
/// The primitive layer is header-only on purpose: `ts/stats` and
/// `ts/rolling` sit *below* core in the link order but must share the
/// canonical accumulation order (DotProduct, RollingCrossSums::Reset);
/// inline definitions give them that without a link cycle. Batch helpers
/// that need `ExecContext` live in kernels.cc; backend resolution and the
/// vector kernels live in kernels_dispatch.cc / kernels_simd_*.cc
/// (the `affinity_kernels` library, linked beneath `affinity_ts`).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace affinity {
struct ExecContext;
namespace ts {
class DataMatrix;
}  // namespace ts
}  // namespace affinity

namespace affinity::core::kernels {

/// Fixed accumulation block, in elements. Changing this changes the bits
/// of every sum in the system — bump only with a DESIGN.md §10 note.
inline constexpr std::size_t kBlockElems = 1024;

/// Independent accumulator lanes per chain (the unroll width).
inline constexpr std::size_t kLanes = 4;
static_assert(kBlockElems % kLanes == 0,
              "grid blocks must start on a lane boundary so a block partial "
              "is a pure function of its samples");

/// Checkpoint stride of the BlockChain leading-prefix state, in rows. A
/// warm slide re-folds at most kPrefixStride − 1 leading rows from the
/// nearest retained checkpoint instead of re-walking the whole partial
/// block. Purely a cache granularity — it never affects output bits.
inline constexpr std::size_t kPrefixStride = 128;
static_assert(kBlockElems % kPrefixStride == 0,
              "checkpoint rows must tile the grid block");

namespace detail {

/// Accumulates `kChains` independent lane sets over the span
/// [begin, end) of the window, adding each element at window-relative
/// index i into lane (i - begin) % kLanes. The per-lane addition order is
/// increasing i — exactly the order `BlockChain` appends trailing
/// elements in, which is what makes a lane state resumable.
template <int kChains, class Term>
inline void AccumulateSpan(std::size_t begin, std::size_t end, const Term& term,
                           double lanes[kChains][kLanes]) {
  std::size_t i = begin;
  for (; i + kLanes <= end; i += kLanes) {
    double v0[kChains], v1[kChains], v2[kChains], v3[kChains];
    term(i, v0);
    term(i + 1, v1);
    term(i + 2, v2);
    term(i + 3, v3);
    for (int c = 0; c < kChains; ++c) {
      lanes[c][0] += v0[c];
      lanes[c][1] += v1[c];
      lanes[c][2] += v2[c];
      lanes[c][3] += v3[c];
    }
  }
  for (std::size_t l = 0; i < end; ++i, ++l) {
    double v[kChains];
    term(i, v);
    for (int c = 0; c < kChains; ++c) lanes[c][l] += v[c];
  }
}

/// The leading-span mirror of AccumulateSpan: walks [begin, end) from
/// end − 1 **down** to begin, adding the element at window-relative index
/// i into lane (end - 1 - i) % kLanes, per-lane addition in decreasing i.
/// The lane state after processing down to index i is a pure function of
/// [i, end) — the property the BlockChain prefix checkpoints rely on.
template <int kChains, class Term>
inline void AccumulateSpanReversed(std::size_t begin, std::size_t end, const Term& term,
                                   double lanes[kChains][kLanes]) {
  std::size_t i = end;
  for (; i >= begin + kLanes; i -= kLanes) {
    double v0[kChains], v1[kChains], v2[kChains], v3[kChains];
    term(i - 1, v0);
    term(i - 2, v1);
    term(i - 3, v2);
    term(i - 4, v3);
    for (int c = 0; c < kChains; ++c) {
      lanes[c][0] += v0[c];
      lanes[c][1] += v1[c];
      lanes[c][2] += v2[c];
      lanes[c][3] += v3[c];
    }
  }
  for (std::size_t l = 0; i > begin; --i, ++l) {
    double v[kChains];
    term(i - 1, v);
    for (int c = 0; c < kChains; ++c) lanes[c][l] += v[c];
  }
}

/// Accumulates `kChains` independent sums over [0, m) in the canonical
/// anchored blocked order. `term(i, v)` writes the i-th element of every
/// chain into v[0..kChains). The window's first element sits at absolute
/// stream row `anchor`; spans are cut where (anchor + i) crosses a
/// multiple of kBlockElems; the leading span (anchor off-grid) walks
/// top-down (see the file comment). Each chain's reduction order is a
/// function of (anchor mod kBlockElems, m) alone, so any two kernels —
/// on any backend — running the same chain at the same anchor agree
/// bitwise.
template <int kChains, class Term>
inline void Accumulate(std::size_t m, const Term& term, double* out, std::size_t anchor = 0) {
  for (int c = 0; c < kChains; ++c) out[c] = 0.0;
  const std::size_t phase = anchor % kBlockElems;
  std::size_t base = 0;
  std::size_t end = kBlockElems - phase < m ? kBlockElems - phase : m;
  bool leading = phase != 0;
  while (base < m) {
    double lanes[kChains][kLanes] = {};
    if (leading) {
      AccumulateSpanReversed<kChains>(base, end, term, lanes);
      leading = false;
    } else {
      AccumulateSpan<kChains>(base, end, term, lanes);
    }
    for (int c = 0; c < kChains; ++c) {
      out[c] += (lanes[c][0] + lanes[c][1]) + (lanes[c][2] + lanes[c][3]);
    }
    base = end;
    end = base + kBlockElems < m ? base + kBlockElems : m;
  }
}

}  // namespace detail

/// Per-column marginals of one pass: Σx, Σx², min, max. The sum/sumsq
/// chains equal `BlockedSum(x)` / `BlockedDot(x, x)` bitwise; min/max are
/// order-independent. Empty columns report all-zero marginals.
struct Marginals {
  double sum = 0.0;
  double sumsq = 0.0;
  double min = 0.0;
  double max = 0.0;
};

// --- Scalar reference kernels ----------------------------------------------
//
// The portable definition of the canonical order. The public kernels below
// dispatch to these (or to a bit-identical vector specialization); tests
// call them directly to cross-check backends.

namespace scalar {

/// Σ xᵢ in the canonical blocked order.
inline double BlockedSum(const double* x, std::size_t m, std::size_t anchor = 0) {
  double out;
  detail::Accumulate<1>(m, [x](std::size_t i, double* v) { v[0] = x[i]; }, &out, anchor);
  return out;
}

/// Σ xᵢyᵢ in the canonical blocked order. x and y may alias (BlockedDot(x, x)
/// is a supported spelling of Σx²), so the inputs are deliberately not
/// __restrict-qualified — they are only ever read.
inline double BlockedDot(const double* x, const double* y, std::size_t m,
                         std::size_t anchor = 0) {
  double out;
  detail::Accumulate<1>(m, [x, y](std::size_t i, double* v) { v[0] = x[i] * y[i]; }, &out,
                        anchor);
  return out;
}

inline Marginals ColumnMarginals(const double* x, std::size_t m, std::size_t anchor = 0) {
  Marginals out;
  if (m == 0) return out;
  // min/max ride the same single pass inside the term callback (each
  // element is visited exactly once); they are order-independent, so the
  // sum/sumsq chains stay bitwise equal to BlockedSum/BlockedDot.
  double lo = x[0], hi = x[0];
  double sums[2];
  detail::Accumulate<2>(
      m,
      [x, &lo, &hi](std::size_t i, double* v) {
        const double xi = x[i];
        v[0] = xi;
        v[1] = xi * xi;
        lo = xi < lo ? xi : lo;
        hi = xi > hi ? xi : hi;
      },
      sums, anchor);
  out.sum = sums[0];
  out.sumsq = sums[1];
  out.min = lo;
  out.max = hi;
  return out;
}

/// Σxy, Σx², Σy² in one fused pass — the per-pair cost of every derived
/// measure once the marginals are hoisted elsewhere.
inline void FusedDot3(const double* x, const double* y, std::size_t m, double* dot_xy,
                      double* dot_xx, double* dot_yy, std::size_t anchor = 0) {
  double out[3];
  detail::Accumulate<3>(
      m,
      [x, y](std::size_t i, double* v) {
        v[0] = x[i] * y[i];
        v[1] = x[i] * x[i];
        v[2] = y[i] * y[i];
      },
      out, anchor);
  *dot_xy = out[0];
  *dot_xx = out[1];
  *dot_yy = out[2];
}

/// The normal-equation right-hand side (Σc1·t, Σc2·t, Σt) in one fused
/// pass — shared by the SYMEX+ build fit (fit_kernels.h) and the
/// incremental accumulator re-materialization (RollingCrossSums::Reset),
/// which must agree bitwise (DESIGN.md §8).
inline void FusedCross3(const double* c1, const double* c2, const double* t, std::size_t m,
                        double out[3], std::size_t anchor = 0) {
  detail::Accumulate<3>(
      m,
      [c1, c2, t](std::size_t i, double* v) {
        v[0] = c1[i] * t[i];
        v[1] = c2[i] * t[i];
        v[2] = t[i];
      },
      out, anchor);
}

/// The five Gram sums of the design [c1, c2, 1m] — s11, s12, s22, h1, h2
/// — in one fused pass. Chain-equal to ColumnMarginals/BlockedDot over
/// the same columns, which is what lets `GramFromMeasures` (assembled
/// from hoisted pivot measures) match `ComputeGram` bit for bit.
inline void FusedGram5(const double* c1, const double* c2, std::size_t m, double out[5],
                       std::size_t anchor = 0) {
  detail::Accumulate<5>(
      m,
      [c1, c2](std::size_t i, double* v) {
        v[0] = c1[i] * c1[i];
        v[1] = c1[i] * c2[i];
        v[2] = c2[i] * c2[i];
        v[3] = c1[i];
        v[4] = c2[i];
      },
      out, anchor);
}

/// Σx, Σx², Σy, Σy², Σxy in one fused pass — the full co-moment set of a
/// pair, from which every T/D pair measure is computable without touching
/// the raw columns again (core::PairMeasureFromMoments). Chain-equal to
/// ColumnMarginals(x/y) + BlockedDot(x, y).
inline void FusedPairMoments(const double* x, const double* y, std::size_t m, double out[5],
                             std::size_t anchor = 0) {
  detail::Accumulate<5>(
      m,
      [x, y](std::size_t i, double* v) {
        v[0] = x[i];
        v[1] = x[i] * x[i];
        v[2] = y[i];
        v[3] = y[i] * y[i];
        v[4] = x[i] * y[i];
      },
      out, anchor);
}

}  // namespace scalar

// --- Backend dispatch (kernels_dispatch.cc) --------------------------------

/// Kernel backend identifier. Resolution order: the
/// `AFFINITY_KERNEL_BACKEND` env var (`scalar` | `avx2` | `neon` |
/// `auto`), then CPU-feature detection (`__builtin_cpu_supports("avx2")`
/// on x86; NEON is baseline on aarch64), then scalar.
enum class Backend { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The dispatch table of one backend: every chain kernel, anchor-explicit.
/// All entries produce bitwise-identical sum chains (see the file
/// comment); `column_marginals` min/max are value-equal.
struct BackendOps {
  Backend id;
  const char* name;
  double (*blocked_sum)(const double* x, std::size_t m, std::size_t anchor);
  double (*blocked_dot)(const double* x, const double* y, std::size_t m, std::size_t anchor);
  Marginals (*column_marginals)(const double* x, std::size_t m, std::size_t anchor);
  void (*fused_dot3)(const double* x, const double* y, std::size_t m, double* dot_xy,
                     double* dot_xx, double* dot_yy, std::size_t anchor);
  void (*fused_cross3)(const double* c1, const double* c2, const double* t, std::size_t m,
                       double* out, std::size_t anchor);
  void (*fused_gram5)(const double* c1, const double* c2, std::size_t m, double* out,
                      std::size_t anchor);
  void (*fused_pair_moments)(const double* x, const double* y, std::size_t m, double* out,
                             std::size_t anchor);
};

/// The active dispatch table, resolved once on first use (thread-safe;
/// concurrent first calls resolve to the same table).
const BackendOps& ActiveOps();

/// The active backend id / display name ("scalar", "avx2", "neon").
Backend ActiveBackend();
const char* ActiveBackendName();

/// True when `b` can run on this machine (compiled in and CPU-supported).
bool BackendSupported(Backend b);

/// Forces the active backend; returns false (and leaves the current
/// backend) when unsupported. Test/bench hook — not thread-safe against
/// in-flight kernels.
bool SetBackend(Backend b);

/// Parses an env-style backend name; returns false on unknown input.
/// "auto" maps to the CPU-detected best backend.
bool ParseBackend(const char* name, Backend* out);

/// Internal registries implemented in kernels_simd_*.cc; null on
/// architectures where the backend cannot be compiled.
const BackendOps* Avx2Ops();
const BackendOps* NeonOps();

/// Software-prefetch lookahead, in elements, used by the vector column
/// walks and the batch sweeps; 0 disables. Runtime-tunable so bench_micro
/// can sweep distances; tuned default from that sweep.
std::size_t PrefetchDistance();
void SetPrefetchDistance(std::size_t elems);
inline constexpr std::size_t kDefaultPrefetchDistance = 64;

// --- Public kernels (dispatched) -------------------------------------------

/// Σ xᵢ in the canonical blocked order.
inline double BlockedSum(const double* x, std::size_t m, std::size_t anchor = 0) {
  return ActiveOps().blocked_sum(x, m, anchor);
}

/// Σ xᵢyᵢ in the canonical blocked order (x and y may alias).
inline double BlockedDot(const double* x, const double* y, std::size_t m,
                         std::size_t anchor = 0) {
  return ActiveOps().blocked_dot(x, y, m, anchor);
}

inline Marginals ColumnMarginals(const double* x, std::size_t m, std::size_t anchor = 0) {
  return ActiveOps().column_marginals(x, m, anchor);
}

/// Σxy, Σx², Σy² in one fused pass.
inline void FusedDot3(const double* x, const double* y, std::size_t m, double* dot_xy,
                      double* dot_xx, double* dot_yy, std::size_t anchor = 0) {
  ActiveOps().fused_dot3(x, y, m, dot_xy, dot_xx, dot_yy, anchor);
}

/// The normal-equation right-hand side (Σc1·t, Σc2·t, Σt) in one pass.
inline void FusedCross3(const double* c1, const double* c2, const double* t, std::size_t m,
                        double out[3], std::size_t anchor = 0) {
  ActiveOps().fused_cross3(c1, c2, t, m, out, anchor);
}

/// The five Gram sums of the design [c1, c2, 1m].
inline void FusedGram5(const double* c1, const double* c2, std::size_t m, double out[5],
                       std::size_t anchor = 0) {
  ActiveOps().fused_gram5(c1, c2, m, out, anchor);
}

/// Σx, Σx², Σy, Σy², Σxy in one fused pass.
inline void FusedPairMoments(const double* x, const double* y, std::size_t m, double out[5],
                             std::size_t anchor = 0) {
  ActiveOps().fused_pair_moments(x, y, m, out, anchor);
}

// --- Masked (pairwise-complete) kernels (DESIGN.md §12) --------------------
//
// Dirty-stream variants of the marginal / pair-moment kernels: a validity
// mask (one byte per row, 0 = invalid) excludes gap rows from the sums and
// reports how many rows actually contributed. Two contracts hold:
//
//  * **Dense fast path**: a full mask (every byte non-zero, or a null
//    pointer) routes to the dispatched dense kernel, so fully-valid
//    windows pay one O(m) byte scan and are *bitwise identical* to the
//    dense result — the PR 4–6 bit-identity web is untouched.
//  * **Canonical masked order**: a partial mask runs the same anchored
//    blocked accumulation with invalid rows contributing exactly 0.0 to
//    every chain. The reduction order is still a function of
//    (anchor mod kBlockElems, m) alone, so masked sweeps are thread-count
//    invariant and two kernels sharing a chain agree bitwise.
//
// Pairwise-complete semantics: a row contributes to a pair only when both
// series are valid at that row, and the reported `valid` count is the
// divisor for moment-based measures (core::PairMeasureFromMoments).

/// True when every row of `mask[0..m)` is valid. A null mask means fully
/// valid (the dense calling convention). memchr keeps the scan at libc
/// SIMD speed — the fast-path probe must stay cheap next to the dense
/// kernel it guards.
inline bool MaskAllValid(const std::uint8_t* mask, std::size_t m) {
  return mask == nullptr || std::memchr(mask, 0, m) == nullptr;
}

/// Caller-side hoist of the fast-path probe: a fully-valid mask collapses
/// to nullptr, so per-pair kernel calls over the same column pay O(1)
/// instead of re-scanning O(m) bytes each time. Sweeps that touch every
/// pair should normalize each column's mask once and pass the result.
inline const std::uint8_t* NormalizeMask(const std::uint8_t* mask, std::size_t m) {
  return MaskAllValid(mask, m) ? nullptr : mask;
}

/// Rows of `mask[0..m)` that are invalid (0 for a null mask).
inline std::size_t MaskInvalidCount(const std::uint8_t* mask, std::size_t m) {
  if (mask == nullptr) return 0;
  std::size_t invalid = 0;
  for (std::size_t i = 0; i < m; ++i) invalid += mask[i] == 0 ? 1 : 0;
  return invalid;
}

/// Marginals over the valid rows of one column, plus the count of rows
/// that contributed. `valid == 0` reports all-zero marginals.
struct MaskedMarginals {
  Marginals marginals;
  std::size_t valid = 0;
};

/// ColumnMarginals over the valid rows of x. Full mask → the dispatched
/// dense kernel, bit for bit; partial mask → canonical masked order
/// (sum/sumsq chains bitwise equal to any other masked kernel sharing
/// them; min/max taken over valid rows only).
inline MaskedMarginals MaskedColumnMarginals(const double* x, const std::uint8_t* mask,
                                             std::size_t m, std::size_t anchor = 0) {
  if (MaskAllValid(mask, m)) return {ColumnMarginals(x, m, anchor), m};
  MaskedMarginals out;
  bool seen = false;
  double lo = 0.0, hi = 0.0;
  std::size_t valid = 0;
  double sums[2];
  detail::Accumulate<2>(
      m,
      [x, mask, &seen, &lo, &hi, &valid](std::size_t i, double* v) {
        if (mask[i] == 0) {
          v[0] = 0.0;
          v[1] = 0.0;
          return;
        }
        const double xi = x[i];
        v[0] = xi;
        v[1] = xi * xi;
        // min/max/count are order-independent; they ride the term callback
        // without perturbing the sum chains.
        if (!seen) {
          lo = hi = xi;
          seen = true;
        } else {
          lo = xi < lo ? xi : lo;
          hi = xi > hi ? xi : hi;
        }
        ++valid;
      },
      sums, anchor);
  out.marginals.sum = sums[0];
  out.marginals.sumsq = sums[1];
  out.marginals.min = lo;
  out.marginals.max = hi;
  out.valid = valid;
  return out;
}

/// FusedPairMoments over the pairwise-complete rows of (x, y): a row
/// contributes only when both masks are valid there (either mask may be
/// null = fully valid). Writes Σx, Σx², Σy, Σy², Σxy over those rows to
/// `out[5]` and the contributing-row count to `*valid`. Both masks full →
/// the dispatched dense kernel, bit for bit.
inline void MaskedFusedPairMoments(const double* x, const double* y,
                                   const std::uint8_t* mask_x, const std::uint8_t* mask_y,
                                   std::size_t m, double out[5], std::size_t* valid,
                                   std::size_t anchor = 0) {
  if (MaskAllValid(mask_x, m) && MaskAllValid(mask_y, m)) {
    FusedPairMoments(x, y, m, out, anchor);
    if (valid != nullptr) *valid = m;
    return;
  }
  std::size_t count = 0;
  detail::Accumulate<5>(
      m,
      [x, y, mask_x, mask_y, &count](std::size_t i, double* v) {
        if ((mask_x != nullptr && mask_x[i] == 0) || (mask_y != nullptr && mask_y[i] == 0)) {
          for (int c = 0; c < 5; ++c) v[c] = 0.0;
          return;
        }
        v[0] = x[i];
        v[1] = x[i] * x[i];
        v[2] = y[i];
        v[3] = y[i] * y[i];
        v[4] = x[i] * y[i];
        ++count;
      },
      out, anchor);
  if (valid != nullptr) *valid = count;
}

// --- Retained block partials (DESIGN.md §10) -------------------------------

/// Per-refresh accounting of a retained-partial update: how many grid
/// blocks were recomputed or freshly completed versus served from the
/// cache, and how often the leading partial block resumed from its
/// checkpointed prefix state instead of a full re-walk. Reported through
/// MaintenanceProfile and bench_streaming.
struct BlockSpanStats {
  std::size_t touched = 0;  ///< partial/leading spans recomputed + blocks completed
  std::size_t reused = 0;   ///< interior block partials reused bit-for-bit
  std::size_t prefix_resumes = 0;  ///< leading spans resumed from a checkpoint

  void Add(const BlockSpanStats& o) {
    touched += o.touched;
    reused += o.reused;
    prefix_resumes += o.prefix_resumes;
  }
};

/// Retained block partials of `kChains` fused canonical chains over one
/// sliding window (the BlockPartialCache unit). The chain remembers, for
/// the window [anchor, anchor + window) it last produced totals for:
///
///  * `interior_`: the reduced partial of every grid block fully inside
///    the window (kChains values per block, block order),
///  * the **lane state of the trailing partial block** — the four
///    unreduced lane sums over the elements accumulated into the grid
///    block the window currently ends inside, and
///  * the **prefix state of the leading partial block**: the canonical
///    top-down walk of [anchor, B) checkpoints its lane state every
///    `kPrefixStride` rows on the way down. Because the reversed walk's
///    state at row r is a pure function of rows [r, B), a later slide to
///    a higher anchor restarts from the nearest checkpoint at or above it
///    and folds fewer than kPrefixStride rows — O(kPrefixStride) instead
///    of O(kBlockElems) per refresh. The checkpoints die with their block
///    (the anchor crossing B) and on any geometry change.
///
/// `SlideTo(new_anchor, term, out)` advances the window and produces
/// totals bitwise identical to a cold anchored `Accumulate` over the new
/// window, by construction: interior partials are pure functions of their
/// samples (reused), appended samples extend the trailing lane state in
/// the exact cold order (lane = in-block offset mod kLanes, increasing),
/// and the leading span resumes the exact cold top-down order from a
/// checkpoint. Ownership and invalidation live in IncrementalMaintainer:
/// the chain is dropped whenever the structure it sums over changes
/// (escalation, rebuild, restore).
template <int kChains>
class BlockChain {
 public:
  BlockChain() = default;

  bool initialized() const { return init_; }
  std::size_t anchor() const { return anchor_; }
  std::size_t window() const { return window_; }

  /// Advances the retained state to the window [new_anchor, new_anchor +
  /// window) and writes its canonical totals. `term(i, v)` must read the
  /// *current* window buffer at window-relative index i ∈ [0, window).
  /// Falls back to a cold rebuild when uninitialized, when the window
  /// length changed, when the slide moved backwards, or when the slide
  /// covers the whole window (nothing to retain).
  template <class Term>
  void SlideTo(std::size_t new_anchor, std::size_t window, const Term& term,
               double out[kChains], BlockSpanStats* stats = nullptr) {
    if (!init_ || window != window_ || new_anchor < anchor_ || new_anchor - anchor_ >= window) {
      Rebuild(new_anchor, window, term, stats);
    } else {
      Advance(new_anchor, term, stats);
    }
    Totals(term, out, stats);
  }

  /// Drops all retained state (the next SlideTo rebuilds cold).
  void Invalidate() {
    init_ = false;
    prefix_end_ = 0;
  }

 private:
  static constexpr std::size_t kPrefixCkpts = kBlockElems / kPrefixStride;

  static std::size_t FirstGrid(std::size_t anchor) {
    return (anchor + kBlockElems - 1) / kBlockElems;
  }

  /// Cold start: retain interiors and trailing lanes for [anchor, anchor+w).
  template <class Term>
  void Rebuild(std::size_t anchor, std::size_t window, const Term& term,
               BlockSpanStats* stats) {
    anchor_ = anchor;
    window_ = window;
    interior_.clear();
    lane_block_ = FirstGrid(anchor);
    trailing_len_ = 0;
    for (int c = 0; c < kChains; ++c) {
      for (std::size_t l = 0; l < kLanes; ++l) lanes_[c][l] = 0.0;
    }
    prefix_end_ = 0;
    init_ = true;
    Append(term, stats);
  }

  /// Warm slide: drop evicted interiors, extend the tail with the
  /// appended samples, keep everything in between untouched.
  template <class Term>
  void Advance(std::size_t new_anchor, const Term& term, BlockSpanStats* stats) {
    const std::size_t gf = FirstGrid(new_anchor);
    // Interiors that slid out of the window (their block now starts
    // before the new first grid row).
    const std::size_t have = interior_.size() / kChains;
    const std::size_t first_block = lane_block_ - have;
    const std::size_t drop = gf > first_block ? (gf - first_block < have ? gf - first_block : have)
                                              : 0;
    if (drop > 0) {
      interior_.erase(interior_.begin(),
                      interior_.begin() + static_cast<std::ptrdiff_t>(drop * kChains));
    }
    if (lane_block_ < gf) {
      // The old trailing block itself was evicted (a multi-refresh gap):
      // discard its lane state and restart coverage at the new grid.
      AFFINITY_DCHECK(interior_.empty());
      lane_block_ = gf;
      trailing_len_ = 0;
      for (int c = 0; c < kChains; ++c) {
        for (std::size_t l = 0; l < kLanes; ++l) lanes_[c][l] = 0.0;
      }
    }
    if (stats != nullptr) stats->reused += interior_.size() / kChains;
    anchor_ = new_anchor;
    Append(term, stats);
  }

  /// Extends coverage from the retained end to the window end, completing
  /// grid blocks as they fill. Lane assignment is the in-block offset mod
  /// kLanes in increasing row order — the cold AccumulateSpan order, so a
  /// block completed across several slides reduces to the identical bits.
  template <class Term>
  void Append(const Term& term, BlockSpanStats* stats) {
    const std::size_t end_abs = anchor_ + window_;
    std::size_t a = lane_block_ * kBlockElems + trailing_len_;
    // Coverage may legitimately start past end_abs (a window inside one
    // block has no retained coverage), but never before the anchor.
    AFFINITY_DCHECK(a >= anchor_);
    while (a < end_abs) {
      const std::size_t block_end = (lane_block_ + 1) * kBlockElems;
      const std::size_t stop = block_end < end_abs ? block_end : end_abs;
      double v[kChains];
      for (; a < stop; ++a) {
        term(a - anchor_, v);
        const std::size_t lane = (a % kBlockElems) % kLanes;
        for (int c = 0; c < kChains; ++c) lanes_[c][lane] += v[c];
      }
      trailing_len_ = a - lane_block_ * kBlockElems;
      if (trailing_len_ == kBlockElems) {
        for (int c = 0; c < kChains; ++c) {
          interior_.push_back((lanes_[c][0] + lanes_[c][1]) + (lanes_[c][2] + lanes_[c][3]));
          for (std::size_t l = 0; l < kLanes; ++l) lanes_[c][l] = 0.0;
        }
        ++lane_block_;
        trailing_len_ = 0;
        if (stats != nullptr) ++stats->touched;
      }
    }
  }

  /// Produces the leading span's lane state — the canonical top-down walk
  /// of window rows [0, lead_len) — resuming from the retained prefix
  /// checkpoints when the span still descends from the same grid row.
  template <class Term>
  void LeadingSpan(std::size_t lead_len, const Term& term, double lanes[kChains][kLanes],
                   BlockSpanStats* stats) {
    const std::size_t lead_end = anchor_ + lead_len;
    AFFINITY_DCHECK(lead_len > 0 && lead_len <= window_);
    if (lead_end != FirstGrid(anchor_) * kBlockElems) {
      // The window never reaches the grid (it sits inside one block), so
      // the walk's base moves with the window end and nothing can be
      // retained: cold reversed walk.
      detail::AccumulateSpanReversed<kChains>(0, lead_len, term, lanes);
      if (stats != nullptr) ++stats->touched;
      return;
    }
    const std::size_t grid_end = lead_end;  // B: the grid row the walk descends from
    if (prefix_end_ == grid_end && anchor_ >= prefix_floor_) {
      // Resume: the nearest checkpoint at or above the new anchor holds
      // the lane state of [ckpt, B); fold the < kPrefixStride rows below
      // it in the same decreasing-row order the cold walk uses.
      const std::size_t ckpt =
          ((anchor_ + kPrefixStride - 1) / kPrefixStride) * kPrefixStride;
      AFFINITY_DCHECK(ckpt >= anchor_ && ckpt <= grid_end);
      if (ckpt < grid_end) {
        const std::size_t k = (ckpt + kBlockElems - grid_end) / kPrefixStride;
        AFFINITY_DCHECK(k < kPrefixCkpts && ckpt >= prefix_floor_);
        for (int c = 0; c < kChains; ++c) {
          for (std::size_t l = 0; l < kLanes; ++l) lanes[c][l] = prefix_ckpt_[k][c][l];
        }
      }
      // else: the anchor sits in the topmost stride — start from zeros.
      for (std::size_t r = ckpt < grid_end ? ckpt : grid_end; r > anchor_; --r) {
        const std::size_t row = r - 1;
        double v[kChains];
        term(row - anchor_, v);
        const std::size_t lane = (grid_end - 1 - row) % kLanes;
        for (int c = 0; c < kChains; ++c) lanes[c][lane] += v[c];
      }
      if (stats != nullptr) ++stats->prefix_resumes;
      return;
    }
    // Cold walk from B − 1 down to the anchor, capturing the checkpoint
    // lane states as the walk crosses each stride row. At position r the
    // state covers [r, B); stride-aligned positions (including an aligned
    // anchor) are stored so a later resume finds them.
    for (std::size_t r = grid_end;; --r) {
      if (r % kPrefixStride == 0 && r < grid_end) {
        const std::size_t k = (r + kBlockElems - grid_end) / kPrefixStride;
        AFFINITY_DCHECK(k < kPrefixCkpts);
        for (int c = 0; c < kChains; ++c) {
          for (std::size_t l = 0; l < kLanes; ++l) prefix_ckpt_[k][c][l] = lanes[c][l];
        }
      }
      if (r == anchor_) break;
      const std::size_t row = r - 1;
      double v[kChains];
      term(row - anchor_, v);
      const std::size_t lane = (grid_end - 1 - row) % kLanes;
      for (int c = 0; c < kChains; ++c) lanes[c][lane] += v[c];
    }
    prefix_end_ = grid_end;
    prefix_floor_ = anchor_;
    if (stats != nullptr) ++stats->touched;
  }

  /// Re-reduces leading + interiors + trailing lanes in the canonical
  /// span order. The leading partial block (present when the anchor is
  /// off-grid) is served by the prefix state above.
  template <class Term>
  void Totals(const Term& term, double out[kChains], BlockSpanStats* stats) {
    const std::size_t gf = FirstGrid(anchor_);
    const std::size_t lead_end_abs = gf * kBlockElems < anchor_ + window_
                                         ? gf * kBlockElems
                                         : anchor_ + window_;
    for (int c = 0; c < kChains; ++c) out[c] = 0.0;
    if (lead_end_abs > anchor_) {
      double lead[kChains][kLanes] = {};
      LeadingSpan(lead_end_abs - anchor_, term, lead, stats);
      for (int c = 0; c < kChains; ++c) {
        out[c] += (lead[c][0] + lead[c][1]) + (lead[c][2] + lead[c][3]);
      }
    }
    // The cache re-anchor invariant: retained coverage must tile the rest
    // of the window exactly — interiors for every fully covered grid
    // block, the trailing lane state for the remainder. A window that
    // never reaches the grid (it sits inside one block) has no retained
    // coverage at all: the leading span above was the whole window.
    const std::size_t have = interior_.size() / kChains;
    if (gf * kBlockElems >= anchor_ + window_) {
      AFFINITY_CHECK(have == 0 && trailing_len_ == 0);
      return;
    }
    const std::size_t ge = (anchor_ + window_) / kBlockElems;
    AFFINITY_CHECK(lane_block_ == ge && have == ge - gf);
    AFFINITY_CHECK_EQ(lane_block_ * kBlockElems + trailing_len_, anchor_ + window_);
    for (std::size_t b = 0; b < have; ++b) {
      for (int c = 0; c < kChains; ++c) out[c] += interior_[b * kChains + c];
    }
    if (trailing_len_ > 0) {
      for (int c = 0; c < kChains; ++c) {
        out[c] += (lanes_[c][0] + lanes_[c][1]) + (lanes_[c][2] + lanes_[c][3]);
      }
      if (stats != nullptr) ++stats->touched;
    }
  }

  std::size_t anchor_ = 0;
  std::size_t window_ = 0;
  /// Reduced partials of the fully covered grid blocks, kChains values
  /// per block in block order; the first retained block is
  /// `lane_block_ - interior_.size() / kChains`.
  std::vector<double> interior_;
  /// Grid index of the block the lane state accumulates, and how many of
  /// its elements are folded in so far.
  std::size_t lane_block_ = 0;
  std::size_t trailing_len_ = 0;
  double lanes_[kChains][kLanes] = {};
  /// Leading-prefix state: `prefix_ckpt_[k]` is the reversed-walk lane
  /// state covering rows [prefix_end_ − kBlockElems + k·kPrefixStride,
  /// prefix_end_), captured by the last cold walk (which descended to
  /// `prefix_floor_`). `prefix_end_` == 0 means no retained prefix.
  std::size_t prefix_end_ = 0;
  std::size_t prefix_floor_ = 0;
  double prefix_ckpt_[kPrefixCkpts][kChains][kLanes] = {};
  bool init_ = false;
};

// --- Batch helpers (kernels.cc) --------------------------------------------

/// Marginals of every column of `data`, hoisted once per query as a
/// deterministic chunked parallel loop (one chain per column, so the
/// result is thread-count invariant). Runs at the matrix's block-grid
/// anchor.
std::vector<Marginals> HoistMarginals(const ts::DataMatrix& data, const ExecContext& exec);

/// As above over an explicit column list (the shard router's resolved
/// cross-pair columns), all of length `m` anchored at `anchor`.
std::vector<Marginals> HoistMarginals(const std::vector<const double*>& columns, std::size_t m,
                                      const ExecContext& exec, std::size_t anchor = 0);

/// Masked marginals of an explicit column list. `masks` is either empty
/// (all columns fully valid) or one mask pointer per column, where a null
/// entry means that column is fully valid. Deterministic chunked parallel
/// loop — one chain per column, thread-count invariant.
std::vector<MaskedMarginals> HoistMaskedMarginals(const std::vector<const double*>& columns,
                                                  const std::vector<const std::uint8_t*>& masks,
                                                  std::size_t m, const ExecContext& exec,
                                                  std::size_t anchor = 0);

}  // namespace affinity::core::kernels

#endif  // AFFINITY_CORE_KERNELS_H_
