#include "core/measures.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "ts/stats.h"

namespace affinity::core {

MeasureClass ClassOf(Measure m) {
  switch (m) {
    case Measure::kMean:
    case Measure::kMedian:
    case Measure::kMode:
      return MeasureClass::kLocation;
    case Measure::kCovariance:
    case Measure::kDotProduct:
      return MeasureClass::kDispersion;
    case Measure::kCorrelation:
    case Measure::kCosine:
    case Measure::kJaccard:
    case Measure::kDice:
      return MeasureClass::kDerived;
  }
  return MeasureClass::kLocation;  // unreachable
}

Measure BaseMeasure(Measure m) {
  switch (m) {
    case Measure::kCorrelation:
      return Measure::kCovariance;
    case Measure::kCosine:
    case Measure::kJaccard:
    case Measure::kDice:
      return Measure::kDotProduct;
    default:
      return m;
  }
}

bool HasSeparableNormalizer(Measure m) {
  return m == Measure::kCorrelation || m == Measure::kCosine;
}

std::string_view MeasureName(Measure m) {
  switch (m) {
    case Measure::kMean:
      return "mean";
    case Measure::kMedian:
      return "median";
    case Measure::kMode:
      return "mode";
    case Measure::kCovariance:
      return "covariance";
    case Measure::kDotProduct:
      return "dot-product";
    case Measure::kCorrelation:
      return "correlation";
    case Measure::kCosine:
      return "cosine";
    case Measure::kJaccard:
      return "jaccard";
    case Measure::kDice:
      return "dice";
  }
  return "unknown";
}

std::vector<Measure> AllMeasures() {
  std::vector<Measure> out;
  out.reserve(kNumMeasures);
  for (int i = 0; i < kNumMeasures; ++i) out.push_back(static_cast<Measure>(i));
  return out;
}

std::vector<Measure> LocationMeasures() {
  return {Measure::kMean, Measure::kMedian, Measure::kMode};
}

std::vector<Measure> DispersionMeasures() {
  return {Measure::kCovariance, Measure::kDotProduct};
}

std::vector<Measure> DerivedMeasures() {
  return {Measure::kCorrelation, Measure::kCosine, Measure::kJaccard, Measure::kDice};
}

StatusOr<double> NaiveLocationMeasure(Measure m, const double* x, std::size_t len) {
  switch (m) {
    case Measure::kMean:
      return ts::stats::Mean(x, len);
    case Measure::kMedian:
      return ts::stats::Median(x, len);
    case Measure::kMode:
      // The from-scratch baseline uses the classical O(m²) local-density
      // estimator; the histogram mode is its fast approximation used on
      // pivots (see stats.h).
      return ts::stats::NaiveModeEstimate(x, len);
    default:
      return Status::InvalidArgument(std::string(MeasureName(m)) + " is not an L-measure");
  }
}

PairMoments ComputePairMoments(const double* x, const double* y, std::size_t len,
                               std::size_t anchor) {
  double sums[5];
  kernels::FusedPairMoments(x, y, len, sums, anchor);
  return PairMoments{len, sums[0], sums[1], sums[2], sums[3], sums[4]};
}

StatusOr<double> PairMeasureFromMoments(Measure m, const PairMoments& pm) {
  const double inv = pm.m == 0 ? 0.0 : 1.0 / static_cast<double>(pm.m);
  switch (m) {
    case Measure::kCovariance:
      return pm.dot_xy * inv - (pm.sum_x * inv) * (pm.sum_y * inv);
    case Measure::kDotProduct:
      return pm.dot_xy;
    case Measure::kCorrelation: {
      const double mean_x = pm.sum_x * inv;
      const double mean_y = pm.sum_y * inv;
      const double var_x = std::max(0.0, pm.sumsq_x * inv - mean_x * mean_x);
      const double var_y = std::max(0.0, pm.sumsq_y * inv - mean_y * mean_y);
      const double u = std::sqrt(var_x * var_y);
      return u == 0.0 ? 0.0 : (pm.dot_xy * inv - mean_x * mean_y) / u;
    }
    case Measure::kCosine: {
      const double u = std::sqrt(pm.sumsq_x * pm.sumsq_y);
      return u == 0.0 ? 0.0 : pm.dot_xy / u;
    }
    case Measure::kJaccard: {
      const double denom = pm.sumsq_x + pm.sumsq_y - pm.dot_xy;
      return denom == 0.0 ? 0.0 : pm.dot_xy / denom;
    }
    case Measure::kDice: {
      const double denom = pm.sumsq_x + pm.sumsq_y;
      return denom == 0.0 ? 0.0 : 2.0 * pm.dot_xy / denom;
    }
    default:
      return Status::InvalidArgument(std::string(MeasureName(m)) + " is not a pair measure");
  }
}

StatusOr<double> NaivePairMeasure(Measure m, const double* x, const double* y, std::size_t len,
                                  std::size_t anchor) {
  if (IsLocation(m)) {
    return Status::InvalidArgument(std::string(MeasureName(m)) + " is not a pair measure");
  }
  return PairMeasureFromMoments(m, ComputePairMoments(x, y, len, anchor));
}

PairMoments ComputePairMomentsMasked(const double* x, const double* y,
                                     const std::uint8_t* mask_x, const std::uint8_t* mask_y,
                                     std::size_t len, std::size_t anchor) {
  double sums[5];
  std::size_t valid = 0;
  kernels::MaskedFusedPairMoments(x, y, mask_x, mask_y, len, sums, &valid, anchor);
  return PairMoments{valid, sums[0], sums[1], sums[2], sums[3], sums[4]};
}

StatusOr<double> NaivePairMeasureMasked(Measure m, const double* x, const double* y,
                                        const std::uint8_t* mask_x, const std::uint8_t* mask_y,
                                        std::size_t len, std::size_t anchor) {
  if (IsLocation(m)) {
    return Status::InvalidArgument(std::string(MeasureName(m)) + " is not a pair measure");
  }
  return PairMeasureFromMoments(m, ComputePairMomentsMasked(x, y, mask_x, mask_y, len, anchor));
}

StatusOr<double> NaivePairMeasureScalar(Measure m, const double* x, const double* y,
                                        std::size_t len) {
  switch (m) {
    case Measure::kCovariance:
      return ts::stats::Covariance(x, y, len);
    case Measure::kDotProduct:
      return ts::stats::DotProduct(x, y, len);
    case Measure::kCorrelation:
      return ts::stats::Correlation(x, y, len);
    case Measure::kCosine:
    case Measure::kJaccard:
    case Measure::kDice: {
      // One fused sequential loop — the seed version scanned both columns
      // three times for the same three sums.
      double nx = 0, ny = 0, d = 0;
      for (std::size_t i = 0; i < len; ++i) {
        // affinity-lint: allow(fp-accumulate): naive-oracle measure — the sequential
        // reference the kernel-backed paths are asserted bit-identical against
        nx += x[i] * x[i];
        ny += y[i] * y[i];
        d += x[i] * y[i];
      }
      if (m == Measure::kCosine) {
        const double u = std::sqrt(nx * ny);
        return u == 0.0 ? 0.0 : d / u;
      }
      if (m == Measure::kJaccard) {
        const double denom = nx + ny - d;
        return denom == 0.0 ? 0.0 : d / denom;
      }
      const double denom = nx + ny;
      return denom == 0.0 ? 0.0 : 2.0 * d / denom;
    }
    default:
      return Status::InvalidArgument(std::string(MeasureName(m)) + " is not a pair measure");
  }
}

StatusOr<double> NaiveNormalizer(Measure m, const double* x, const double* y, std::size_t len,
                                 std::size_t anchor) {
  switch (m) {
    case Measure::kCorrelation:
      return ts::stats::CorrelationNormalizer(x, y, len);
    case Measure::kCosine:
      return std::sqrt(ts::stats::DotProduct(x, x, len, anchor) *
                       ts::stats::DotProduct(y, y, len, anchor));
    default:
      return Status::InvalidArgument(std::string(MeasureName(m)) +
                                     " has no separable normalizer");
  }
}

}  // namespace affinity::core
