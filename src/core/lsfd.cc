#include "core/lsfd.h"

#include <algorithm>
#include <cmath>

#include "la/eigen.h"

namespace affinity::core {

StatusOr<double> LsfdSquared(const la::Matrix& x, const la::Matrix& y) {
  if (x.cols() != 2 || y.cols() != 2) {
    return Status::InvalidArgument("LSFD requires m×2 pair matrices");
  }
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("LSFD requires equal row counts");
  }
  if (x.rows() < 2) {
    return Status::InvalidArgument("LSFD requires at least 2 samples");
  }

  // Zero-mean the four columns, then take the 4×4 Gram matrix of
  // C = [X̂, Ŷ]. Its eigenvalues are the squared singular values of C, so
  // DF² = λ3² + λ4² = eig3 + eig4 directly — no square roots needed.
  const std::size_t m = x.rows();
  const double* cols[4] = {x.ColData(0), x.ColData(1), y.ColData(0), y.ColData(1)};
  double mean[4];
  for (int j = 0; j < 4; ++j) {
    double s = 0;
    // affinity-lint: allow(fp-accumulate): 4-column LSFD moments — sequential, fixed order
    for (std::size_t i = 0; i < m; ++i) s += cols[j][i];
    mean[j] = s / static_cast<double>(m);
  }
  la::Matrix gram(4, 4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a; b < 4; ++b) {
      double acc = 0;
      for (std::size_t i = 0; i < m; ++i) {
        // affinity-lint: allow(fp-accumulate): 4x4 Gram fill — sequential, fixed order
        acc += (cols[a][i] - mean[a]) * (cols[b][i] - mean[b]);
      }
      gram(a, b) = acc;
      gram(b, a) = acc;
    }
  }
  AFFINITY_ASSIGN_OR_RETURN(std::vector<double> eig, la::SymmetricEigenvalues(gram));
  // eig is descending; clamp tiny negatives from roundoff.
  const double df2 = std::max(0.0, eig[2]) + std::max(0.0, eig[3]);
  return df2;
}

StatusOr<double> Lsfd(const la::Matrix& x, const la::Matrix& y) {
  AFFINITY_ASSIGN_OR_RETURN(double df2, LsfdSquared(x, y));
  return std::sqrt(df2);
}

}  // namespace affinity::core
