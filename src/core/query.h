#ifndef AFFINITY_CORE_QUERY_H_
#define AFFINITY_CORE_QUERY_H_

/// \file query.h
/// The three AFFINITY query types (Section 2.2) and a query engine that
/// answers each of them with any of the paper's four strategies:
///
///  * **WN** — naive: every value recomputed from the raw samples;
///  * **WA** — affine relationships (Section 4.1): O(1) per value after the
///    one-time SYMEX+ preprocessing;
///  * **WF** — top-5-DFT-coefficient approximation (correlation only);
///  * **SCAPE** — the index of Section 5 (MET/MER only);
///
/// or with **AUTO**, which consults the cost-based `QueryPlanner`
/// (planner.h) over the capabilities actually attached and dispatches to
/// the cheapest admissible strategy. Every response carries the
/// `ExecutedPlan` that answered it, for EXPLAIN-style introspection.
///
/// Full-sweep queries (MET/MER over all O(n²) sequence pairs, MEC pair
/// matrices, top-k) execute as deterministic chunked parallel loops over
/// the engine's `ExecContext` — results are identical at any thread
/// count (DESIGN.md §7).
///
/// The engine is the measurement surface of every benchmark: Figs. 9–12
/// time MEC under WN/WA; Figs. 15–16 and Table 4 time MET/MER under all
/// four strategies.

#include <functional>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/measures.h"
#include "core/planner.h"
#include "core/scape.h"
#include "core/symex.h"
#include "dft/dft_correlation.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "ts/data_matrix.h"

namespace affinity::core {

/// The strategy that actually answered a query — the planner's choice
/// (cost estimate and rationale included) for `kAuto` queries, or a fixed
/// "explicitly requested" record otherwise.
using ExecutedPlan = PlanChoice;

/// Quality stamp of one answer (DESIGN.md §12): the worst composite
/// quality score among the series the answer touched, and how many
/// candidates the `min_quality` predicate excluded. `populated` is set
/// only when a quality surface was attached to the answering engine —
/// dense deployments without one are unchanged.
struct AnswerQuality {
  bool populated = false;
  double min_score = 1.0;   ///< worst score among touched series
  std::size_t excluded = 0; ///< candidates dropped by the predicate
};

/// Query 1 — measure computation over a set of series ψ.
struct MecRequest {
  Measure measure = Measure::kCovariance;
  std::vector<ts::SeriesId> ids;  ///< ψ ⊆ I
  /// Quality predicate (DESIGN.md §12): every id in ψ must have composite
  /// quality ≥ min_quality, else the query fails FailedPrecondition (the
  /// response shape is id-aligned, so silent exclusion is not an option).
  /// 0 (default) disables the predicate.
  double min_quality = 0.0;
};

/// MEC response: `location[i]` for L-measures (aligned with request ids),
/// or the |ψ|×|ψ| symmetric `pair_values` matrix for T/D-measures.
struct MecResponse {
  la::Vector location;
  la::Matrix pair_values;
  ExecutedPlan plan;
  AnswerQuality quality;
};

/// Query 2 — measure threshold: entities with measure > τ (or < τ).
struct MetRequest {
  Measure measure = Measure::kCovariance;
  double tau = 0.0;
  bool greater = true;
  /// Quality predicate: keep only entities whose series (both endpoints
  /// for pairs) score ≥ min_quality. 0 disables.
  double min_quality = 0.0;
};

/// Query 3 — measure range: entities with measure strictly in (lo, hi).
struct MerRequest {
  Measure measure = Measure::kCovariance;
  double lo = 0.0;
  double hi = 0.0;
  /// Quality predicate: keep only entities whose series (both endpoints
  /// for pairs) score ≥ min_quality. 0 disables.
  double min_quality = 0.0;
};

/// Top-k query (extension): the k entities with the largest (or smallest)
/// measure value.
struct TopKRequest {
  Measure measure = Measure::kCorrelation;
  std::size_t k = 10;
  bool largest = true;
  /// Quality predicate: only entities whose series (both endpoints for
  /// pairs) score ≥ min_quality compete for the k slots. 0 disables.
  double min_quality = 0.0;
};

/// Result of a MET/MER query: series ids for L-measures, sequence pairs for
/// T/D-measures. `prune` is populated by the SCAPE strategy only.
struct SelectionResult {
  std::vector<ts::SeriesId> series;
  std::vector<ts::SequencePair> pairs;
  PruneStats prune;
  ExecutedPlan plan;
  AnswerQuality quality;
};

/// Engine-level top-k result: the index-side entries plus the plan that
/// produced them.
struct TopKResult : ScapeTopKResult {
  ExecutedPlan plan;
  AnswerQuality quality;
};

/// The selection predicates — keep(value, a, b) — shared by the engine's
/// MET/MER sweeps, the streaming freshness-blend path, and the shard
/// router's cross-shard sweep, so bound semantics (strict comparisons,
/// open ranges) are defined exactly once.
inline bool KeepGreater(double value, double tau, double /*unused*/) { return value > tau; }
inline bool KeepLesser(double value, double tau, double /*unused*/) { return value < tau; }
inline bool KeepInside(double value, double lo, double hi) { return lo < value && value < hi; }

/// One cross-shard pair scheduled for naive evaluation: the global
/// sequence pair plus its two aligned column spans, each resolved by the
/// caller from (possibly different) shard snapshots.
struct CrossPair {
  ts::SequencePair pair;
  const double* u = nullptr;
  const double* v = nullptr;
};

/// Raw-scan accounting of one cross-pair sweep — the counters behind the
/// shard router's co-moment-cache hit ratio (a warm cache must report
/// zero pair scans; bench_streaming surfaces them).
struct CrossSweepStats {
  std::size_t pairs_scanned = 0;    ///< pairs whose columns were read (one fused dot each)
  std::size_t columns_hoisted = 0;  ///< distinct columns whose marginals were computed
};

/// Evaluates `measure` for every cross-shard pair from scratch (WN) over
/// its aligned length-`m` column spans — the cross-shard half of a
/// scatter-gather MET/MER/MEC/top-k (DESIGN.md §9). No per-shard model or
/// index covers a pair spanning two shards, so the router resolves each
/// pair's columns against the shard snapshots and sweeps them here as a
/// deterministic chunked parallel loop over `exec`: marginals of every
/// distinct column hoisted once, then exactly one fused blocked dot per
/// pair (DESIGN.md §10) — bitwise equal to `NaivePairMeasure` over the
/// same columns. Values are returned index-aligned with `pairs`; when
/// `moments` is non-null it receives each pair's co-moments (the shard
/// router's cross co-moment cache fills from them), and `stats`
/// accumulates raw-scan counters. `anchor` is the columns' block-grid
/// anchor (the shard snapshots' `anchor_row()`, identical across a
/// lockstep deployment). InvalidArgument for L-measures.
StatusOr<std::vector<double>> EvaluateCrossPairs(Measure measure,
                                                 const std::vector<CrossPair>& pairs,
                                                 std::size_t m, const ExecContext& exec = {},
                                                 std::vector<PairMoments>* moments = nullptr,
                                                 CrossSweepStats* stats = nullptr,
                                                 std::size_t anchor = 0);

/// Strategy-dispatching query processor.
///
/// The engine never owns its inputs; the caller guarantees that `data` (and
/// any attached model/index/estimator/thread pool) outlives it. `Affinity`
/// (framework.h) packages the ownership story for typical users.
class QueryEngine {
 public:
  /// An engine that can only answer with WN, sequentially.
  explicit QueryEngine(const ts::DataMatrix* data);

  /// Enables the WA strategy.
  void AttachModel(const AffinityModel* model) { model_ = model; }

  /// Enables the WF strategy (correlation only). Like WN, the WF strategy
  /// computes its approximation *per query* (sketch construction included)
  /// — this is how the paper's evaluation costs it. Callers wanting an
  /// amortized, pre-built estimator should use dft::DftCorrelationEstimator
  /// directly (the Affinity facade exposes one via wf()).
  void EnableDft(std::size_t coefficients = dft::kDefaultCoefficients) {
    wf_coefficients_ = coefficients;
  }

  /// Enables the SCAPE strategy (MET/MER).
  void AttachScape(const ScapeIndex* scape) { scape_ = scape; }

  /// Attaches the per-series quality surface (DESIGN.md §12): composite
  /// scores in [0, 1], one per series id. Enables the `min_quality`
  /// request predicate and stamps every answer's AnswerQuality. The
  /// vector must outlive the engine and track data_->n(); nullptr
  /// detaches (requests with min_quality > 0 then fail
  /// FailedPrecondition).
  void AttachQuality(const std::vector<double>* scores) { quality_ = scores; }

  /// The attached quality surface (nullptr when none).
  const std::vector<double>* quality() const { return quality_; }

  /// Sets the execution context used by full-sweep queries. The pool (if
  /// any) must outlive the engine; default is sequential.
  void SetExec(const ExecContext& exec) { exec_ = exec; }

  /// The engine's execution context.
  const ExecContext& exec() const { return exec_; }

  /// The planner capabilities implied by what is attached — the basis of
  /// every `kAuto` dispatch.
  QueryPlanner::Capabilities Capabilities() const;

  /// Query 1. FailedPrecondition when the strategy is not attached;
  /// InvalidArgument for strategy/measure mismatches (e.g. WF with a
  /// non-correlation measure) or out-of-range ids.
  StatusOr<MecResponse> Mec(const MecRequest& request,
                            QueryMethod method = QueryMethod::kAuto) const;

  /// Query 2 over all series (L) or all sequence pairs (T/D).
  StatusOr<SelectionResult> Met(const MetRequest& request,
                                QueryMethod method = QueryMethod::kAuto) const;

  /// Query 3 over all series (L) or all sequence pairs (T/D).
  StatusOr<SelectionResult> Mer(const MerRequest& request,
                                QueryMethod method = QueryMethod::kAuto) const;

  /// Top-k query (extension). WN/WA evaluate all entities and select;
  /// SCAPE runs the index-side threshold algorithm. Results are best-first.
  StatusOr<TopKResult> TopK(const TopKRequest& request,
                            QueryMethod method = QueryMethod::kAuto) const;

 private:
  /// kAuto → the planner's verdict over current capabilities (`plan` is
  /// called with a ready planner); anything else → an "explicitly
  /// requested" record. The single point where auto dispatch resolves.
  ExecutedPlan ResolvePlan(QueryMethod method,
                           const std::function<PlanChoice(const QueryPlanner&)>& plan) const;

  Status CheckIds(const std::vector<ts::SeriesId>& ids) const;
  StatusOr<double> Value(Measure measure, ts::SeriesId u, ts::SeriesId v,
                         QueryMethod method) const;
  StatusOr<double> SeriesValue(Measure measure, ts::SeriesId v, QueryMethod method) const;
  StatusOr<SelectionResult> SelectByPredicate(Measure measure, QueryMethod method,
                                              bool (*keep)(double, double, double), double a,
                                              double b) const;
  StatusOr<SelectionResult> SelectByPredicateDft(Measure measure,
                                                 bool (*keep)(double, double, double), double a,
                                                 double b) const;

  /// Shared epilogue of the quality-aware query paths: verifies the
  /// predicate is servable (quality attached when min_quality > 0).
  Status CheckQualityPredicate(double min_quality) const;
  /// Score of one series under the attached surface (1.0 when detached).
  double QualityScore(ts::SeriesId v) const;

  const ts::DataMatrix* data_;
  const AffinityModel* model_ = nullptr;
  std::size_t wf_coefficients_ = 0;  ///< 0 = WF disabled
  const ScapeIndex* scape_ = nullptr;
  const std::vector<double>* quality_ = nullptr;
  ExecContext exec_;
};

}  // namespace affinity::core

#endif  // AFFINITY_CORE_QUERY_H_
