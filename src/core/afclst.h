#ifndef AFFINITY_CORE_AFCLST_H_
#define AFFINITY_CORE_AFCLST_H_

/// \file afclst.h
/// The AFCLST affine clustering algorithm (Algorithm 1).
///
/// AFCLST clusters the n series of a data matrix into k clusters such that
/// every series is well approximated by a *scaling of its cluster centre* —
/// which in turn makes the LSFD between a sequence pair matrix [s_u, s_v]
/// and the pivot matrix [s_u, r_ω(v)] small (§3.3, Fig. 4).
///
///  * assignment: series s_v joins the cluster whose centre r_ℓ minimizes
///    the orthogonal projection error ‖s_v − r_ℓ(r_ℓᵀ s_v)‖;
///  * update: r_ℓ becomes the left singular vector of the member matrix R_ℓ
///    associated with the largest singular value (the direction minimizing
///    the summed projection errors);
///  * stop when fewer than δ_min memberships change or after γ_max rounds.

#include <cstdint>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "la/matrix.h"
#include "ts/data_matrix.h"

namespace affinity::core {

/// AFCLST parameters; defaults are the paper's experimental settings
/// (k = 6, γ_max = 10, δ_min = 10 — §6.2).
struct AfclstOptions {
  std::size_t k = 6;          ///< number of affine clusters
  int max_iterations = 10;    ///< γ_max
  int min_changes = 10;       ///< δ_min: stop when changes ≤ this
  std::uint64_t seed = 1;     ///< centre-initialization seed
  /// Dirty-data pivot hygiene (DESIGN.md §12): series whose composite
  /// quality score (in `series_quality`) falls below this threshold are
  /// still *assigned* to clusters but never seed a centre and never enter
  /// a centre's SVD update — a gappy, heavily forward-filled series must
  /// not steer the pivot every other series is approximated against. 0
  /// (the default) disables the exclusion entirely.
  double min_center_quality = 0.0;
  /// Per-series quality scores, aligned with the data columns. Empty
  /// disables the exclusion; otherwise the size must equal n. Ignored
  /// when `min_center_quality` is 0.
  std::vector<double> series_quality = {};
};

/// AFCLST output: the centres r_ℓ and the assignment function ω.
struct AfclstResult {
  /// m×k matrix; column ℓ is the unit-norm centre r_ℓ.
  la::Matrix centers;
  /// ω(v): cluster id of series v (size n).
  std::vector<int> assignment;
  /// Iterations actually executed.
  int iterations = 0;
  /// Final per-series orthogonal projection error ‖s_v − r(rᵀs_v)‖.
  std::vector<double> projection_errors;

  /// Convenience: ω(v).
  int Omega(ts::SeriesId v) const { return assignment[v]; }
  /// Number of clusters k.
  std::size_t k() const { return centers.cols(); }
};

/// Runs AFCLST on the columns of `data`. The per-series distance
/// computations (assignment phase and seeding) and the per-cluster centre
/// updates fan out over `exec`; the clustering is identical at any thread
/// count (re-seeding randomness is drawn sequentially).
/// InvalidArgument when k is 0, exceeds n, or data is empty.
StatusOr<AfclstResult> RunAfclst(const ts::DataMatrix& data, const AfclstOptions& options,
                                 const ExecContext& exec = {});

/// The m×2 *pivot pair matrix* O_p = [s_u, r_ω(v)] of Definition 2 for the
/// sequence pair (u, v) under `clustering`.
la::Matrix PivotPairMatrix(const ts::DataMatrix& data, const AfclstResult& clustering,
                           ts::SeriesId u, ts::SeriesId v);

}  // namespace affinity::core

#endif  // AFFINITY_CORE_AFCLST_H_
