#include "core/affine.h"

#include "common/check.h"
#include "core/kernels.h"
#include "la/solve.h"
#include "ts/stats.h"

namespace affinity::core {

la::Matrix AffineTransform::AMatrix() const {
  la::Matrix a(2, 2);
  a(0, 0) = a11;
  a(1, 0) = a21;
  a(0, 1) = a12;
  a(1, 1) = a22;
  return a;
}

la::Vector AffineTransform::BVector() const { return la::Vector{b1, b2}; }

PairMatrixMeasures ComputePairMatrixMeasures(const double* x1, const double* x2, std::size_t m,
                                             std::size_t anchor) {
  PairMatrixMeasures out;
  out.m = m;
  out.median[0] = ts::stats::Median(x1, m);
  out.median[1] = ts::stats::Median(x2, m);
  out.mode[0] = ts::stats::Mode(x1, m);
  out.mode[1] = ts::stats::Mode(x2, m);
  // One fused blocked pass for the second moments and sums — chain-equal
  // to ComputeGram and RecomputeDerived over the same columns at the same
  // grid anchor.
  double g[5];  // s11, s12, s22, h1, h2
  kernels::FusedGram5(x1, x2, m, g, anchor);
  out.dot11 = g[0];
  out.dot12 = g[1];
  out.dot22 = g[2];
  out.h1 = g[3];
  out.h2 = g[4];
  if (m > 0) {
    // Means from the fused sums, divided (not inv-multiplied) exactly as
    // RecomputeDerived derives them, so the two routes agree bitwise.
    out.mean[0] = g[3] / static_cast<double>(m);
    out.mean[1] = g[4] / static_cast<double>(m);
    const double inv_m = 1.0 / static_cast<double>(m);
    out.cov11 = g[0] * inv_m - out.mean[0] * out.mean[0];
    out.cov12 = g[1] * inv_m - out.mean[0] * out.mean[1];
    out.cov22 = g[2] * inv_m - out.mean[1] * out.mean[1];
  }
  return out;
}

StatusOr<AffineTransform> FitAffine(const la::Matrix& source, const la::Matrix& target) {
  if (source.cols() != 2 || target.cols() != 2) {
    return Status::InvalidArgument("FitAffine requires m×2 pair matrices");
  }
  if (source.rows() != target.rows()) {
    return Status::InvalidArgument("FitAffine requires equal row counts");
  }
  if (source.rows() < 3) {
    return Status::InvalidArgument("FitAffine requires at least 3 samples");
  }
  // Design matrix M = [source, 1m]; solve min ‖M·X − target‖_F. X is 3×2
  // with A stacked above bᵀ.
  la::Matrix design(source.rows(), 3);
  for (std::size_t i = 0; i < source.rows(); ++i) {
    design(i, 0) = source(i, 0);
    design(i, 1) = source(i, 1);
    design(i, 2) = 1.0;
  }
  AFFINITY_ASSIGN_OR_RETURN(la::Matrix x, la::SolveLeastSquares(design, target));
  AffineTransform t;
  t.a11 = x(0, 0);
  t.a21 = x(1, 0);
  t.a12 = x(0, 1);
  t.a22 = x(1, 1);
  t.b1 = x(2, 0);
  t.b2 = x(2, 1);
  return t;
}

la::Matrix ApplyAffine(const la::Matrix& source, const AffineTransform& t) {
  AFFINITY_CHECK_EQ(source.cols(), 2u);
  la::Matrix out(source.rows(), 2);
  const double* c1 = source.ColData(0);
  const double* c2 = source.ColData(1);
  double* o1 = out.ColData(0);
  double* o2 = out.ColData(1);
  for (std::size_t i = 0; i < source.rows(); ++i) {
    o1[i] = t.a11 * c1[i] + t.a21 * c2[i] + t.b1;
    o2[i] = t.a12 * c1[i] + t.a22 * c2[i] + t.b2;
  }
  return out;
}

double PropagateLocation(double lx1, double lx2, const AffineTransform& t, int col) {
  AFFINITY_DCHECK(col == 0 || col == 1);
  if (col == 0) return lx1 * t.a11 + lx2 * t.a21 + t.b1;
  return lx1 * t.a12 + lx2 * t.a22 + t.b2;
}

double PropagateCovariance(const PairMatrixMeasures& x, const AffineTransform& t) {
  // a1ᵀ Σ a2 with Σ symmetric.
  const double sa2_1 = x.cov11 * t.a12 + x.cov12 * t.a22;  // (Σ a2)_1
  const double sa2_2 = x.cov12 * t.a12 + x.cov22 * t.a22;  // (Σ a2)_2
  return t.a11 * sa2_1 + t.a21 * sa2_2;
}

double PropagateVariance(const PairMatrixMeasures& x, const AffineTransform& t, int col) {
  AFFINITY_DCHECK(col == 0 || col == 1);
  const double c1 = col == 0 ? t.a11 : t.a12;
  const double c2 = col == 0 ? t.a21 : t.a22;
  return c1 * (x.cov11 * c1 + x.cov12 * c2) + c2 * (x.cov12 * c1 + x.cov22 * c2);
}

double PropagateDotProduct(const PairMatrixMeasures& x, const AffineTransform& t) {
  const double pa2_1 = x.dot11 * t.a12 + x.dot12 * t.a22;  // (Π a2)_1
  const double pa2_2 = x.dot12 * t.a12 + x.dot22 * t.a22;  // (Π a2)_2
  const double quad = t.a11 * pa2_1 + t.a21 * pa2_2;       // a1ᵀ Π a2
  const double a1h = t.a11 * x.h1 + t.a21 * x.h2;          // a1ᵀ h
  const double ha2 = x.h1 * t.a12 + x.h2 * t.a22;          // hᵀ a2
  return quad + a1h * t.b2 + t.b1 * ha2 + static_cast<double>(x.m) * t.b1 * t.b2;
}

double PropagateSquaredNorm(const PairMatrixMeasures& x, const AffineTransform& t, int col) {
  AFFINITY_DCHECK(col == 0 || col == 1);
  const double c1 = col == 0 ? t.a11 : t.a12;
  const double c2 = col == 0 ? t.a21 : t.a22;
  const double b = col == 0 ? t.b1 : t.b2;
  const double quad = c1 * (x.dot11 * c1 + x.dot12 * c2) + c2 * (x.dot12 * c1 + x.dot22 * c2);
  const double hac = x.h1 * c1 + x.h2 * c2;
  return quad + 2.0 * b * hac + static_cast<double>(x.m) * b * b;
}

}  // namespace affinity::core
