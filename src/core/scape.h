#ifndef AFFINITY_CORE_SCAPE_H_
#define AFFINITY_CORE_SCAPE_H_

/// \file scape.h
/// The SCAPE (SCAlar ProjEction) index (Section 5).
///
/// For every pivot pair q the propagated value of an L/T-measure over a
/// related sequence pair d decomposes as  value = αqᵀ·βqd , where
///  * βqd = (a_1c, a_2c, b_c) comes *only* from the affine relationship
///    (c = the non-common column), and
///  * αq comes *only* from the pivot's pre-computed measures (Table 2).
///
/// Ordering the scalar projections ξqd = αqᵀβqd / ‖αq‖ in a B-tree per
/// pivot turns a measure-threshold (MET) query into a key-range scan after
/// the threshold conversion τ' = τ/‖αq‖, and a measure-range (MER) query
/// into an open-interval scan (§5.2). D-measures (value = ‖αq‖ξ / U) are
/// served from their base T-measure's tree with the §5.3 pruning: per-pivot
/// normalizer bounds [Umin, Umax] split each tree scan into an
/// accept-without-verification region, a reject region, and a (typically
/// narrow) verify band where the exact stored normalizer is consulted.
///
/// Where the paper is loose (a single key ordering cannot literally serve
/// α's pointing in different directions), we keep one sorted container per
/// (pivot, measure family) — see DESIGN.md §2. The β-decoupling and every
/// complexity claim are preserved.
///
/// Boundary semantics: the index stores ξ = αᵀβ/‖α‖ and queries compare
/// against τ/‖α‖, so an entity whose measure value equals the threshold to
/// within a few ulps may be classified to either side (the divide/multiply
/// round trip costs one rounding step relative to the WA strategy's direct
/// evaluation). Thresholds are real-valued cut points, not exact-match
/// predicates; ties at machine precision are unspecified, as with any
/// key-transformed index.
///
/// L-measures use the series-level relationships (one per series) with
/// per-cluster pivot nodes — the "linear in n" structure of Table 4.

#include <array>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/exec_context.h"
#include "common/status.h"
#include "core/measures.h"
#include "core/symex.h"
#include "ts/data_matrix.h"

namespace affinity::serve {
class SnapshotBuilder;  // flattens the index into an immutable serving replica
}  // namespace affinity::serve

namespace affinity::core {

/// SCAPE construction options.
struct ScapeOptions {
  /// B-tree node fanout (entries per node before a split).
  std::size_t btree_fanout = 64;
};

/// Pruning effectiveness counters for one query (§5.3 evaluation).
struct PruneStats {
  std::size_t accepted_unverified = 0;  ///< included without computing the measure
  std::size_t verified = 0;             ///< middle band: measure computed exactly
  std::size_t scanned_degenerate = 0;   ///< zero-normalizer entries checked directly

  PruneStats& operator+=(const PruneStats& o) {
    accepted_unverified += o.accepted_unverified;
    verified += o.verified;
    scanned_degenerate += o.scanned_degenerate;
    return *this;
  }
};

/// Result of a MET or MER query. L-measures fill `series`; T/D-measures
/// fill `pairs`. Order is unspecified (sort before comparing).
struct ScapeQueryResult {
  std::vector<ts::SeriesId> series;
  std::vector<ts::SequencePair> pairs;
  PruneStats prune;
};

/// Sentinel marking "this top-k entry has no series" (pair-measure
/// entries). A real series id can be 0, so absence needs an explicit
/// out-of-band value rather than a default of 0.
inline constexpr ts::SeriesId kNoSeries = std::numeric_limits<ts::SeriesId>::max();

/// One top-k result entry. For pair measures `pair` is set and `series`
/// stays `kNoSeries`; for L-measures `series` is set.
struct ScapeTopKEntry {
  ts::SequencePair pair;
  ts::SeriesId series = kNoSeries;
  double value = 0.0;

  /// True for L-measure entries (a series id is present).
  bool has_series() const { return series != kNoSeries; }
};

/// Result of a top-k query, ordered best-first.
struct ScapeTopKResult {
  std::vector<ScapeTopKEntry> entries;
  /// Entries whose exact value was computed. For T/L measures this equals
  /// |entries| + the frontier overshoot; for D-measures it shows how few
  /// normalizer divisions the threshold algorithm needed versus scanning
  /// all indexed entries.
  std::size_t examined = 0;
};

/// Dirty ξ-interval of one (pivot, measure-family) tree across one
/// `ScapeIndex::Refresh`, for the serving layer's delta flatten
/// (DESIGN.md §11). The contract: every entry whose key ξ, cached
/// normalizer U, or tree membership changed during the refresh has both
/// its old and its new key inside [lo, hi]. Entries strictly outside the
/// interval were left untouched (the sparse-movement fast path), so their
/// sorted (key, entry) subsequence is identical to the previous epoch and
/// a flattened replica may splice it wholesale. `moved == 0` means the
/// tree is bit-identical to the previous epoch.
struct ScapeDeltaRange {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  std::size_t moved = 0;  ///< move operations recorded (0 = tree clean)

  /// Folds one move whose old key was `a` and new key is `b`.
  void Touch(double a, double b) {
    lo = std::min(lo, std::min(a, b));
    hi = std::max(hi, std::max(a, b));
    ++moved;
  }
};

/// Per-refresh dirty-range log, indexed like the index's pivot structures:
/// `pair[pivot][family]` (family 0 = covariance, 1 = dot product) and
/// `loc[cluster][family]` (0 = mean, 1 = median, 2 = mode). Valid only for
/// the refresh that filled it — consumers must use it against the prior
/// epoch's flatten of the same structure and discard it after any rebuild,
/// restore, or escalation.
struct ScapeDeltaLog {
  std::vector<std::array<ScapeDeltaRange, 2>> pair;
  std::vector<std::array<ScapeDeltaRange, 3>> loc;

  void Reset(std::size_t pair_pivots, std::size_t loc_pivots) {
    pair.assign(pair_pivots, {});
    loc.assign(loc_pivots, {});
  }
};

/// K-way heap merge of best-first top-k runs (the gather half of a
/// scatter-gather top-k, DESIGN.md §9): each run must already be ordered
/// best-first under `largest`; the merged result is the global best `k`
/// entries. Ties in value break by (series, pair) so the merged order is
/// deterministic regardless of how entries were distributed over runs.
/// `examined` counts are summed.
ScapeTopKResult MergeTopK(const std::vector<ScapeTopKResult>& runs, std::size_t k, bool largest);

/// The SCAPE index. Built once from an AffinityModel snapshot; queries are
/// read-only and lock-free.
class ScapeIndex {
 public:
  /// Builds the index over every affine relationship in `model`.
  /// Indexes covariance & dot-product trees per pair pivot (serving
  /// covariance, dot product, correlation, cosine) and mean/median/mode
  /// trees per cluster (serving the L-measures). Per-pivot tree
  /// construction fans out over `exec`; the built index is identical at
  /// any thread count (per-tree insertion order is fixed).
  static StatusOr<ScapeIndex> Build(const AffinityModel& model, const ScapeOptions& options = {},
                                    const ExecContext& exec = {});

  /// MET query (Query 2): entities whose `measure` is greater (or lesser)
  /// than `tau`. Unimplemented for Jaccard/Dice (no separable normalizer —
  /// the engine falls back to WA compute-then-filter).
  StatusOr<ScapeQueryResult> MeasureThreshold(Measure measure, double tau,
                                              bool greater = true) const;

  /// MER query (Query 3): entities whose `measure` lies strictly inside
  /// (lo, hi). InvalidArgument when lo > hi.
  StatusOr<ScapeQueryResult> MeasureRange(Measure measure, double lo, double hi) const;

  /// Re-keys the index in place against a maintained model whose derived
  /// state (pivot measures, per-series stats, series-level relationships,
  /// centre L-measures, transforms) has been refreshed for a new window —
  /// the incremental alternative to rebuilding the index (DESIGN.md §8).
  ///
  /// The relationship/pivot *structure* must be unchanged since Build (the
  /// incremental path freezes clustering and marching); only keys and
  /// cached normalizers move. Every entry's scalar projection ξ and
  /// normalizer U are recomputed from the model exactly as Build computes
  /// them, then moved inside its per-(pivot, family) tree by an erase +
  /// insert; entries migrate between a tree and its degenerate side list
  /// when a pivot or normalizer degenerates (or recovers). Per-pivot work
  /// fans out over `exec`; the refreshed index is identical — same entry
  /// sets, same equal-key order — to a from-scratch Build over the same
  /// model, at any thread count.
  ///
  /// Returns the number of index move operations (re-keys + migrations).
  ///
  /// Sparse-movement fast path: an in-tree entry whose recomputed key ξ and
  /// cached normalizer U are both bitwise-unchanged is left in place (no
  /// erase + insert). When `rekeys_skipped` is non-null it receives the
  /// number of such skipped moves (merged in chunk order, so the count is
  /// thread-count invariant). Note one measure-zero caveat: if a *different*
  /// entry of the same pivot re-keys onto exactly the skipped entry's key,
  /// the equal-key order can differ from a from-scratch rebuild (the rebuild
  /// files them in member order; the skip leaves the stale placement). Keys,
  /// entry sets, and query answers are unaffected.
  ///
  /// When `delta` is non-null it is reset to this index's pivot shape and
  /// receives the refresh's dirty ξ-ranges per (pivot, family) — the
  /// ScapeDeltaRange contract above. Each pivot is recorded by the one
  /// chunk that owns it, so the log is identical at any thread count.
  StatusOr<std::size_t> Refresh(const AffinityModel& model, const ExecContext& exec = {},
                                std::size_t* rekeys_skipped = nullptr,
                                ScapeDeltaLog* delta = nullptr);

  /// Top-k query (extension): the k entities with the largest (or smallest)
  /// value of `measure`, best-first.
  ///
  /// T- and L-measures stream each pivot tree in key order and k-way-merge
  /// (exact, no recomputation). D-measures use a Fagin-style threshold
  /// algorithm: per pivot, the frontier key ξ and the normalizer bounds
  /// [Umin, Umax] yield an upper bound on every remaining value, so the
  /// scan stops as soon as k verified values dominate all bounds.
  /// Unimplemented for Jaccard/Dice (as with MET/MER).
  StatusOr<ScapeTopKResult> TopK(Measure measure, std::size_t k, bool largest = true) const;

  /// Number of pair-level pivot nodes.
  std::size_t pair_pivot_count() const { return pair_pivots_.size(); }

  /// Number of indexed sequence-pair entries (per measure family).
  std::size_t pair_entry_count() const { return pair_entries_; }

  /// Number of indexed series entries (per L-measure).
  std::size_t series_entry_count() const { return series_entries_; }

  /// Wall-clock seconds spent building the index.
  double build_seconds() const { return build_seconds_; }

 private:
  /// One sequence-pair entry: the pair, its exact D-measure normalizer
  /// (correlation-U in the covariance tree, cosine-U in the dot tree), and
  /// its scalar-projection key ξ (kept so zero-normalizer entries parked in
  /// the side list can still answer T-measure queries).
  struct SeqEntry {
    ts::SequencePair e;
    double u = 0.0;
    double xi = 0.0;
  };

  /// Sorted container + key metadata for one (pivot, T-measure family).
  /// `member_keys` / `member_in_tree` shadow the owning node's `members`
  /// list with each entry's current location, so Refresh can erase by the
  /// key an entry was last filed under.
  struct PairTree {
    explicit PairTree(std::size_t fanout) : tree(fanout) {}
    double alpha[3] = {0, 0, 0};
    double norm = 0.0;  ///< ‖α‖; 0 marks a degenerate pivot (value ≡ 0)
    double u_min = std::numeric_limits<double>::infinity();
    double u_max = 0.0;
    btree::BPlusTree<SeqEntry> tree;        ///< keyed by ξ, entries with U > 0
    std::vector<SeqEntry> degenerate;       ///< U == 0 entries (D-value ≡ 0)
    std::vector<double> member_keys;        ///< current ξ, aligned with members
    std::vector<double> member_u;           ///< current normalizer U, aligned with members
    std::vector<std::uint8_t> member_in_tree;  ///< 1 = in tree, 0 = side list
  };

  /// Pivot node: trees for the two T-measure families (Fig. 7), plus the
  /// build-order member list the maintenance path walks (the order fixes
  /// equal-key placement, keeping refreshed and rebuilt indexes identical).
  struct PairPivotNode {
    explicit PairPivotNode(std::size_t fanout) : trees{PairTree(fanout), PairTree(fanout)} {}
    PivotPair pivot;
    std::array<PairTree, 2> trees;  ///< 0 = covariance, 1 = dot product
    std::vector<ts::SequencePair> members;  ///< grouped relationship order
    /// The members' affine records, cached at build time (hash nodes are
    /// stable; Refresh requires the same model instance it was built from).
    std::vector<const AffineRecord*> member_recs;
  };

  /// Per-cluster pivot node for the L-measures.
  struct LocTree {
    explicit LocTree(std::size_t fanout) : tree(fanout) {}
    double alpha[2] = {0, 0};
    double norm = 1.0;
    btree::BPlusTree<ts::SeriesId> tree;  ///< keyed by ξ over series
    std::vector<double> member_keys;      ///< current ξ, aligned with members
  };
  struct LocPivotNode {
    explicit LocPivotNode(std::size_t fanout)
        : trees{LocTree(fanout), LocTree(fanout), LocTree(fanout)} {}
    std::array<LocTree, 3> trees;  ///< 0 = mean, 1 = median, 2 = mode
    std::vector<ts::SeriesId> members;    ///< cluster members, series order
  };

  ScapeIndex() = default;

  /// The serving layer flattens the private pivot structures into sorted
  /// contiguous arrays (src/serve); queries never mutate through this seam.
  friend class affinity::serve::SnapshotBuilder;

  static int PairFamilyIndex(Measure m);      // 0 cov, 1 dot, -1 otherwise
  static int LocationFamilyIndex(Measure m);  // 0..2, -1 otherwise

  StatusOr<ScapeQueryResult> LocationThreshold(int family, double tau, bool greater) const;
  StatusOr<ScapeQueryResult> LocationRange(int family, double lo, double hi) const;
  StatusOr<ScapeQueryResult> PairThreshold(Measure measure, double tau, bool greater) const;
  StatusOr<ScapeQueryResult> PairRange(Measure measure, double lo, double hi) const;

  std::vector<PairPivotNode> pair_pivots_;
  std::vector<LocPivotNode> loc_pivots_;  ///< one per cluster
  std::size_t pair_entries_ = 0;
  std::size_t series_entries_ = 0;
  double build_seconds_ = 0.0;
};

}  // namespace affinity::core

#endif  // AFFINITY_CORE_SCAPE_H_
