/// AVX2 specializations of the chain kernels. This TU is compiled with
/// -mavx2 on x86 (CMake per-file flag) and must be the only place AVX2
/// instructions appear — callers reach it through the dispatch table, so
/// a non-AVX2 machine never executes this code. One 256-bit register is
/// exactly the four canonical lanes; see kernels_simd_inl.h for why the
/// results are bitwise identical to the scalar reference. No FMA: the
/// scalar chains round the multiply and the add separately.

#include "core/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "core/kernels_simd_inl.h"

namespace affinity::core::kernels {
namespace {

struct Avx2Traits {
  using Acc = __m256d;
  static Acc Zero() { return _mm256_setzero_pd(); }
  static void Store(double* lanes, Acc a) { _mm256_storeu_pd(lanes, a); }
};

template <int kChains, class VecStep, class Term>
inline void Run(std::size_t m, std::size_t anchor, double* out, const VecStep& vstep,
                const Term& term) {
  simd::AccumulateVec<kChains, Avx2Traits>(m, anchor, out, vstep, term);
}

double Avx2BlockedSum(const double* x, std::size_t m, std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  double out;
  Run<1>(
      m, anchor, &out,
      [x, dist](std::size_t i, __m256d acc[1]) {
        if (dist != 0) __builtin_prefetch(x + i + dist);
        acc[0] = _mm256_add_pd(acc[0], _mm256_loadu_pd(x + i));
      },
      [x](std::size_t i, double* v) { v[0] = x[i]; });
  return out;
}

double Avx2BlockedDot(const double* x, const double* y, std::size_t m, std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  double out;
  Run<1>(
      m, anchor, &out,
      [x, y, dist](std::size_t i, __m256d acc[1]) {
        if (dist != 0) {
          __builtin_prefetch(x + i + dist);
          __builtin_prefetch(y + i + dist);
        }
        acc[0] = _mm256_add_pd(acc[0],
                               _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
      },
      [x, y](std::size_t i, double* v) { v[0] = x[i] * y[i]; });
  return out;
}

Marginals Avx2ColumnMarginals(const double* x, std::size_t m, std::size_t anchor) {
  Marginals out;
  if (m == 0) return out;
  const std::size_t dist = PrefetchDistance();
  // min/max are order-independent, so they may ride the vector pass in
  // packed form; ±0.0 ties can resolve to the other sign bit than the
  // scalar compare chain picks — value-equal, documented in kernels.h.
  double lo = x[0], hi = x[0];
  __m256d vlo = _mm256_set1_pd(x[0]);
  __m256d vhi = vlo;
  double sums[2];
  Run<2>(
      m, anchor, sums,
      [x, dist, &vlo, &vhi](std::size_t i, __m256d acc[2]) {
        if (dist != 0) __builtin_prefetch(x + i + dist);
        const __m256d vx = _mm256_loadu_pd(x + i);
        acc[0] = _mm256_add_pd(acc[0], vx);
        acc[1] = _mm256_add_pd(acc[1], _mm256_mul_pd(vx, vx));
        vlo = _mm256_min_pd(vlo, vx);
        vhi = _mm256_max_pd(vhi, vx);
      },
      [x, &lo, &hi](std::size_t i, double* v) {
        const double xi = x[i];
        v[0] = xi;
        v[1] = xi * xi;
        lo = xi < lo ? xi : lo;
        hi = xi > hi ? xi : hi;
      });
  double fold[kLanes];
  _mm256_storeu_pd(fold, vlo);
  for (double f : fold) lo = f < lo ? f : lo;
  _mm256_storeu_pd(fold, vhi);
  for (double f : fold) hi = f > hi ? f : hi;
  out.sum = sums[0];
  out.sumsq = sums[1];
  out.min = lo;
  out.max = hi;
  return out;
}

void Avx2FusedDot3(const double* x, const double* y, std::size_t m, double* dot_xy,
                   double* dot_xx, double* dot_yy, std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  double out[3];
  Run<3>(
      m, anchor, out,
      [x, y, dist](std::size_t i, __m256d acc[3]) {
        if (dist != 0) {
          __builtin_prefetch(x + i + dist);
          __builtin_prefetch(y + i + dist);
        }
        const __m256d vx = _mm256_loadu_pd(x + i);
        const __m256d vy = _mm256_loadu_pd(y + i);
        acc[0] = _mm256_add_pd(acc[0], _mm256_mul_pd(vx, vy));
        acc[1] = _mm256_add_pd(acc[1], _mm256_mul_pd(vx, vx));
        acc[2] = _mm256_add_pd(acc[2], _mm256_mul_pd(vy, vy));
      },
      [x, y](std::size_t i, double* v) {
        v[0] = x[i] * y[i];
        v[1] = x[i] * x[i];
        v[2] = y[i] * y[i];
      });
  *dot_xy = out[0];
  *dot_xx = out[1];
  *dot_yy = out[2];
}

void Avx2FusedCross3(const double* c1, const double* c2, const double* t, std::size_t m,
                     double* out, std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  Run<3>(
      m, anchor, out,
      [c1, c2, t, dist](std::size_t i, __m256d acc[3]) {
        if (dist != 0) {
          __builtin_prefetch(c1 + i + dist);
          __builtin_prefetch(c2 + i + dist);
          __builtin_prefetch(t + i + dist);
        }
        const __m256d vt = _mm256_loadu_pd(t + i);
        acc[0] = _mm256_add_pd(acc[0], _mm256_mul_pd(_mm256_loadu_pd(c1 + i), vt));
        acc[1] = _mm256_add_pd(acc[1], _mm256_mul_pd(_mm256_loadu_pd(c2 + i), vt));
        acc[2] = _mm256_add_pd(acc[2], vt);
      },
      [c1, c2, t](std::size_t i, double* v) {
        v[0] = c1[i] * t[i];
        v[1] = c2[i] * t[i];
        v[2] = t[i];
      });
}

void Avx2FusedGram5(const double* c1, const double* c2, std::size_t m, double* out,
                    std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  Run<5>(
      m, anchor, out,
      [c1, c2, dist](std::size_t i, __m256d acc[5]) {
        if (dist != 0) {
          __builtin_prefetch(c1 + i + dist);
          __builtin_prefetch(c2 + i + dist);
        }
        const __m256d v1 = _mm256_loadu_pd(c1 + i);
        const __m256d v2 = _mm256_loadu_pd(c2 + i);
        acc[0] = _mm256_add_pd(acc[0], _mm256_mul_pd(v1, v1));
        acc[1] = _mm256_add_pd(acc[1], _mm256_mul_pd(v1, v2));
        acc[2] = _mm256_add_pd(acc[2], _mm256_mul_pd(v2, v2));
        acc[3] = _mm256_add_pd(acc[3], v1);
        acc[4] = _mm256_add_pd(acc[4], v2);
      },
      [c1, c2](std::size_t i, double* v) {
        v[0] = c1[i] * c1[i];
        v[1] = c1[i] * c2[i];
        v[2] = c2[i] * c2[i];
        v[3] = c1[i];
        v[4] = c2[i];
      });
}

void Avx2FusedPairMoments(const double* x, const double* y, std::size_t m, double* out,
                          std::size_t anchor) {
  const std::size_t dist = PrefetchDistance();
  Run<5>(
      m, anchor, out,
      [x, y, dist](std::size_t i, __m256d acc[5]) {
        if (dist != 0) {
          __builtin_prefetch(x + i + dist);
          __builtin_prefetch(y + i + dist);
        }
        const __m256d vx = _mm256_loadu_pd(x + i);
        const __m256d vy = _mm256_loadu_pd(y + i);
        acc[0] = _mm256_add_pd(acc[0], vx);
        acc[1] = _mm256_add_pd(acc[1], _mm256_mul_pd(vx, vx));
        acc[2] = _mm256_add_pd(acc[2], vy);
        acc[3] = _mm256_add_pd(acc[3], _mm256_mul_pd(vy, vy));
        acc[4] = _mm256_add_pd(acc[4], _mm256_mul_pd(vx, vy));
      },
      [x, y](std::size_t i, double* v) {
        v[0] = x[i];
        v[1] = x[i] * x[i];
        v[2] = y[i];
        v[3] = y[i] * y[i];
        v[4] = x[i] * y[i];
      });
}

constexpr BackendOps kAvx2Ops = {
    Backend::kAvx2,        "avx2",
    &Avx2BlockedSum,       &Avx2BlockedDot,       &Avx2ColumnMarginals,
    &Avx2FusedDot3,        &Avx2FusedCross3,      &Avx2FusedGram5,
    &Avx2FusedPairMoments,
};

}  // namespace

const BackendOps* Avx2Ops() { return &kAvx2Ops; }

}  // namespace affinity::core::kernels

#else  // !defined(__AVX2__)

namespace affinity::core::kernels {

const BackendOps* Avx2Ops() { return nullptr; }

}  // namespace affinity::core::kernels

#endif  // defined(__AVX2__)
