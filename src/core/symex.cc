#include "core/symex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/fit_kernels.h"
#include "ts/stats.h"

namespace affinity::core {

namespace {

using fit::ComputeGram;
using fit::ComputeRhs;
using fit::FitRankDeficient;
using fit::Gram3;
using fit::InvertGram;
using fit::MakeTransform;
using fit::Mat3;
using fit::Solve3;

/// The marching/fitting engine shared by SYMEX and SYMEX+. It writes into
/// the model's hash maps via explicit references handed over by RunSymex.
///
/// Execution is split in two: `March()` walks the two fronts sequentially
/// (the marching order *is* the pivot-assignment policy, so it cannot be
/// reordered) while only recording work items; `Fit()` then performs the
/// least-squares fits as a deterministic chunked parallel loop — each
/// item writes its own pre-inserted hash slot, so no synchronization is
/// needed and the fitted model is identical at any thread count.
class SymexRunner {
 public:
  using AffHash = std::unordered_map<std::uint64_t, AffineRecord>;
  using PivotHash = std::unordered_map<std::uint64_t, PivotHashEntry>;

  SymexRunner(const ts::DataMatrix& data, const AfclstResult& clustering,
              const SymexOptions& options, AffHash* aff_hash, PivotHash* pivot_hash,
              SymexStats* stats)
      : data_(data),
        clustering_(clustering),
        options_(options),
        aff_hash_(aff_hash),
        pivot_hash_(pivot_hash),
        stats_(stats),
        n_(data.n()),
        m_(data.m()),
        anchor_(data.anchor_row()),
        total_pairs_(ts::SequencePairCount(data.n())) {}

  void March() {
    if (n_ < 2) return;
    // Two fronts (Algorithm 2): ee from the corner inward, ew from the
    // middle outward. 0-based: ee = (0, n-1); ew = (mid, mid+1).
    const long n = static_cast<long>(n_);
    const long mid = (n - 2) / 2;
    long ee_u = 0, ee_v = n - 1;
    long ew_u = mid, ew_v = mid + 1;
    int flip = 0;
    while (!Done()) {
      const bool ee_alive = ee_u <= n - 2 || ee_v >= 1;
      const bool ew_alive = ew_u >= 0 || ew_v <= n - 1;
      if (!ee_alive && !ew_alive) break;
      if (flip == 0) {
        if (ee_alive) {
          CreatePivots(ee_u, ee_v);
          ++ee_u;
          --ee_v;
        }
        flip = 1;
      } else {
        if (ew_alive) {
          CreatePivots(ew_u, ew_v);
          --ew_u;
          ++ew_v;
        }
        flip = 0;
      }
    }
  }

  /// Fits every relationship recorded by March(). SYMEX+ first computes
  /// the per-pivot inverse normal-equation factors (parallel over pivots),
  /// then solves the per-pair right-hand sides (parallel over pairs);
  /// plain SYMEX re-derives the pseudo-inverse per pair, with per-chunk
  /// scratch.
  void Fit(const ExecContext& exec) {
    if (options_.cache_pseudo_inverse) {
      ParallelChunks(exec, factor_order_.size(),
                     [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         const FactorRef& ref = factor_order_[i];
                         const Gram3 gram = ComputeGram(ref.c1, ref.c2, m_, anchor_);
                         ref.entry->ok = InvertGram(gram, &ref.entry->ginv);
                       }
                     });
      stats_->cache_misses += factor_order_.size();
      stats_->cache_hits += work_.size() - factor_order_.size();
      ParallelChunks(exec, work_.size(),
                     [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) FitCached(work_[i]);
                     });
      return;
    }
    ParallelChunks(exec, work_.size(), [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
      std::vector<double> scratch(3 * m_);
      for (std::size_t i = lo; i < hi; ++i) FitUncached(work_[i], scratch.data());
    });
  }

 private:
  /// One deferred fit: the pre-inserted record plus its sequence pair.
  struct WorkItem {
    AffineRecord* rec;
    ts::SeriesId u;
    ts::SeriesId v;
  };

  bool Done() const {
    return aff_hash_->size() >= total_pairs_ || aff_hash_->size() >= options_.max_relationships;
  }

  /// Algorithm 2's CreatePivots: a row scan at uz (pivots (uz, ω(v))) and a
  /// column scan at vz (pivots (ω(u), vz)).
  void CreatePivots(long uz, long vz) {
    const long n = static_cast<long>(n_);
    if (uz >= 0 && uz <= n - 2) {
      for (long v = uz + 1; v < n; ++v) {
        if (Done()) return;
        SolveInsert(static_cast<ts::SeriesId>(uz), static_cast<ts::SeriesId>(v),
                    /*series_first=*/true);
      }
    }
    if (vz >= 1 && vz <= n - 1) {
      for (long u = 0; u < vz; ++u) {
        if (Done()) return;
        SolveInsert(static_cast<ts::SeriesId>(u), static_cast<ts::SeriesId>(vz),
                    /*series_first=*/false);
      }
    }
  }

  /// Algorithm 2's SolveInsert: skip if already related, otherwise record
  /// the relationship, its pivot, and a deferred fit work item.
  void SolveInsert(ts::SeriesId u, ts::SeriesId v, bool series_first) {
    const ts::SequencePair e(u, v);
    auto [it, inserted] = aff_hash_->try_emplace(e.Key());
    if (!inserted) return;

    PivotPair pivot;
    pivot.series_first = series_first;
    if (series_first) {
      pivot.series = u;
      pivot.cluster = static_cast<std::uint32_t>(clustering_.assignment[v]);
    } else {
      pivot.series = v;
      pivot.cluster = static_cast<std::uint32_t>(clustering_.assignment[u]);
    }

    AffineRecord& rec = it->second;
    rec.pivot = pivot;
    pivot_hash_->try_emplace(pivot.Key(), PivotHashEntry{pivot, {}});
    if (options_.cache_pseudo_inverse) {
      // Create the factor slot now (first-seen pivot order); computed in
      // parallel by Fit(). Slot addresses are stable under rehash.
      auto [fit, factor_inserted] = factor_cache_.try_emplace(pivot.Key());
      if (factor_inserted) {
        const double* c1;
        const double* c2;
        const double* t_unused;
        Columns(pivot, u, v, &c1, &c2, &t_unused);
        factor_order_.push_back(FactorRef{&fit->second, c1, c2});
      }
    }
    work_.push_back(WorkItem{&rec, u, v});
  }

  /// The design columns of a fit: pivot matrix columns (c1, c2) and the
  /// free target column t, resolved from the pivot and the pair.
  void Columns(const PivotPair& pivot, ts::SeriesId u, ts::SeriesId v, const double** c1,
               const double** c2, const double** t) const {
    const double* center = clustering_.centers.ColData(pivot.cluster);
    if (pivot.series_first) {
      *c1 = data_.ColumnData(u);
      *c2 = center;
      *t = data_.ColumnData(v);
    } else {
      *c1 = center;
      *c2 = data_.ColumnData(v);
      *t = data_.ColumnData(u);
    }
  }

  /// SYMEX+ path: the inverse normal-equation factor was computed once per
  /// pivot; only the right-hand side is pair-specific.
  void FitCached(const WorkItem& item) {
    const PivotPair& pivot = item.rec->pivot;
    const double* c1;
    const double* c2;
    const double* t;
    Columns(pivot, item.u, item.v, &c1, &c2, &t);
    const auto it = factor_cache_.find(pivot.Key());
    double x[3];
    if (!it->second.ok) {
      FitRankDeficient(pivot.series_first ? c1 : c2, t, m_, x, anchor_);
      if (!pivot.series_first) std::swap(x[0], x[1]);
    } else {
      double rhs[3];
      ComputeRhs(c1, c2, t, m_, rhs, anchor_);
      Solve3(it->second.ginv, rhs, x);
    }
    item.rec->transform = MakeTransform(pivot.series_first, x);
  }

  /// Plain SYMEX path (Algorithm 2 verbatim): re-derive the pseudo-inverse
  /// of [O_p, 1m] for every sequence pair, materialize it (into the
  /// caller's 3×m scratch), then apply it.
  void FitUncached(const WorkItem& item, double* scratch) {
    const PivotPair& pivot = item.rec->pivot;
    const double* c1;
    const double* c2;
    const double* t;
    Columns(pivot, item.u, item.v, &c1, &c2, &t);
    double x[3];
    const Gram3 gram = ComputeGram(c1, c2, m_, anchor_);
    Mat3 ginv;
    if (!InvertGram(gram, &ginv)) {
      // Same fallback as the cached path: fit against the common *series*
      // column so both variants produce identical relationships.
      FitRankDeficient(pivot.series_first ? c1 : c2, t, m_, x, anchor_);
      if (!pivot.series_first) std::swap(x[0], x[1]);
      item.rec->transform = MakeTransform(pivot.series_first, x);
      return;
    }
    double* p0 = scratch;
    double* p1 = scratch + m_;
    double* p2 = scratch + 2 * m_;
    for (std::size_t i = 0; i < m_; ++i) {
      p0[i] = ginv.v[0] * c1[i] + ginv.v[1] * c2[i] + ginv.v[2];
      p1[i] = ginv.v[3] * c1[i] + ginv.v[4] * c2[i] + ginv.v[5];
      p2[i] = ginv.v[6] * c1[i] + ginv.v[7] * c2[i] + ginv.v[8];
    }
    double x0 = 0, x1 = 0, x2 = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      // affinity-lint: allow(fp-accumulate): pseudo-inverse projection — sequential
      // reference path; the bulk fits use the same order via core/kernels
      x0 += p0[i] * t[i];
      x1 += p1[i] * t[i];
      x2 += p2[i] * t[i];
    }
    x[0] = x0;
    x[1] = x1;
    x[2] = x2;
    item.rec->transform = MakeTransform(pivot.series_first, x);
  }

  struct FactorEntry {
    Mat3 ginv;
    bool ok = false;
  };

  /// A factor to compute: the cache slot plus the pivot's design columns.
  struct FactorRef {
    FactorEntry* entry;
    const double* c1;
    const double* c2;
  };

  const ts::DataMatrix& data_;
  const AfclstResult& clustering_;
  const SymexOptions& options_;
  AffHash* aff_hash_;
  PivotHash* pivot_hash_;
  SymexStats* stats_;
  std::size_t n_;
  std::size_t m_;
  std::size_t anchor_;  ///< block-grid anchor of the window (DESIGN.md §10)
  std::size_t total_pairs_;
  std::unordered_map<std::uint64_t, FactorEntry> factor_cache_;
  std::vector<FactorRef> factor_order_;  ///< first-seen pivot order
  std::vector<WorkItem> work_;           ///< marching order
};

int LocationRow(Measure measure) {
  switch (measure) {
    case Measure::kMean:
      return 0;
    case Measure::kMedian:
      return 1;
    case Measure::kMode:
      return 2;
    default:
      return -1;
  }
}

}  // namespace

void AffinityModel::RecomputeDerived(const ExecContext& exec, const la::Matrix* sorted_columns,
                                     DerivedBlockCache* partials) {
  const ts::DataMatrix& data = data_;
  const std::size_t m = data.m();
  const std::size_t n = data.n();
  const std::size_t k = clustering_.k();
  const std::size_t anchor = data.anchor_row();

  // Every location and moment statistic a pivot needs is a per-*column*
  // quantity — only the dot12/cov12 cross terms are pair-specific — so
  // compute each distinct column (n series + k centres) exactly once
  // instead of once per pivot side. Every accumulator runs as its own
  // canonical blocked chain (core/kernels) at the window's grid anchor,
  // so the assembled values are bit-identical to the fused
  // per-pivot/gram kernels over the same columns (ComputeGram,
  // ComputePairMatrixMeasures, FusedPairMoments) — and, when `partials`
  // retains the chains across refreshes, to the cold pass they replace.
  struct ColumnStats {
    double sum = 0, sumsq = 0;      // h / dot diagonal chains
    double mean = 0, median = 0, mode = 0;
  };
  std::vector<ColumnStats> columns(n + k);
  if (partials != nullptr) {
    partials->columns.resize(n + k);
    partials->series.resize(n);
    partials->modes.resize(n + k);
    partials->last = kernels::BlockSpanStats{};
  }
  // Per-chunk stats folded in chunk order (§7 determinism of the counters).
  std::vector<kernels::BlockSpanStats> chunk_stats(
      partials != nullptr ? ExecNumChunks(n + k) : 0);
  const auto fold_stats = [&](std::size_t count) {
    if (partials == nullptr) return;
    for (const kernels::BlockSpanStats& s : chunk_stats) partials->last.Add(s);
    chunk_stats.assign(ExecNumChunks(count), kernels::BlockSpanStats{});
  };
  ParallelChunks(exec, n + k, [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
    // Per-chunk scratch: stats::Median/Mode allocate per call, which adds
    // up when this runs every streaming refresh. The order statistic and
    // the histogram argmax are permutation- and scratch-independent, so
    // the values match the stats:: functions bit for bit.
    std::vector<double> sorted;
    std::vector<std::uint32_t> hist;
    for (std::size_t c = lo; c < hi; ++c) {
      const double* x = c < n ? data.ColumnData(static_cast<ts::SeriesId>(c))
                              : clustering_.centers.ColData(c - n);
      ColumnStats& cs = columns[c];
      double sums[2];
      if (partials != nullptr) {
        partials->columns[c].SlideTo(
            anchor, m,
            [x](std::size_t i, double* v) {
              v[0] = x[i];
              v[1] = x[i] * x[i];
            },
            sums, &chunk_stats[chunk]);
      } else {
        const kernels::Marginals marg = kernels::ColumnMarginals(x, m, anchor);
        sums[0] = marg.sum;
        sums[1] = marg.sumsq;
      }
      cs.sum = sums[0];
      cs.sumsq = sums[1];
      cs.mean = m == 0 ? 0.0 : sums[0] / static_cast<double>(m);
      if (sorted_columns != nullptr && m > 0) {
        // Medians are order statistics and mode bins are counts, so the
        // pre-sorted view yields the same doubles the selection-based
        // kernels produce from the raw column.
        const double* sc = sorted_columns->ColData(c);
        const std::size_t mid = m / 2;
        cs.median = m % 2 == 1 ? sc[mid] : 0.5 * (sc[mid - 1] + sc[mid]);
        const double lo = sc[0];
        const double hi = sc[m - 1];
        DerivedBlockCache::ColumnModeHist* mh =
            partials != nullptr ? &partials->modes[c] : nullptr;
        if (hi <= lo) {
          cs.mode = lo;  // constant series (the estimator's short-circuit)
          if (mh != nullptr) mh->valid = false;
        } else if (mh == nullptr) {
          cs.mode = ts::stats::ModeSortedWithScratch(sc, m, ts::stats::kModeBins, &hist);
        } else if (mh->valid && mh->lo == lo && mh->hi == hi &&
                   mh->counts.size() == static_cast<std::size_t>(ts::stats::kModeBins)) {
          // The maintenance path delta-updated the integer bin counts
          // under an unchanged binning: finish with the identical argmax
          // and centre arithmetic.
          cs.mode = ts::stats::ModeFromHistogram(lo, hi, mh->counts);
        } else {
          // Extremes moved (or first use): re-fill the retained histogram
          // from the sorted view.
          cs.mode = ts::stats::ModeSortedWithScratch(sc, m, ts::stats::kModeBins, &mh->counts);
          mh->lo = lo;
          mh->hi = hi;
          mh->valid = true;
        }
      } else {
        cs.median = ts::stats::MedianWithScratch(x, m, &sorted);
        cs.mode = ts::stats::ModeWithScratch(x, m, ts::stats::kModeBins, &hist);
      }
    }
  });

  // Pivot measures: cached per-column stats plus the one cross sum. The
  // pass is memory-bound (two window columns per pivot), so iterate pivots
  // grouped by series column — the series column then stays cache-hot
  // across its ~k pivots. Each entry owns its output slot, so the order is
  // free to choose (and fixed: sorted by key, independent of hash layout).
  std::vector<PivotHashEntry*> pivot_entries;
  pivot_entries.reserve(pivot_hash_.size());
  for (auto& [key, entry] : pivot_hash_) pivot_entries.push_back(&entry);
  std::sort(pivot_entries.begin(), pivot_entries.end(),
            [](const PivotHashEntry* a, const PivotHashEntry* b) {
              return a->pivot.Key() < b->pivot.Key();
            });
  if (partials != nullptr) partials->pivots.resize(pivot_entries.size());
  fold_stats(pivot_entries.size());
  ParallelChunks(exec, pivot_entries.size(),
                 [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) {
                     PivotHashEntry& entry = *pivot_entries[i];
                     const double* center = clustering_.centers.ColData(entry.pivot.cluster);
                     const double* series = data.ColumnData(entry.pivot.series);
                     const double* c1 = entry.pivot.series_first ? series : center;
                     const double* c2 = entry.pivot.series_first ? center : series;
                     const ColumnStats& cs_series = columns[entry.pivot.series];
                     const ColumnStats& cs_center = columns[n + entry.pivot.cluster];
                     const ColumnStats& cs1 = entry.pivot.series_first ? cs_series : cs_center;
                     const ColumnStats& cs2 = entry.pivot.series_first ? cs_center : cs_series;
                     // The one remaining O(window) term per pivot; the
                     // blocked chain equals ComputeGram's s12 bit for bit
                     // — retained across refreshes when `partials` is on
                     // (the sorted-by-key slot order is stable while the
                     // structure is frozen).
                     double s12;
                     if (partials != nullptr) {
                       partials->pivots[i].SlideTo(
                           anchor, m,
                           [c1, c2](std::size_t r, double* v) { v[0] = c1[r] * c2[r]; }, &s12,
                           &chunk_stats[chunk]);
                     } else {
                       s12 = kernels::BlockedDot(c1, c2, m, anchor);
                     }
                     PairMatrixMeasures& pm = entry.measures;
                     pm.m = m;
                     pm.mean[0] = cs1.mean;
                     pm.mean[1] = cs2.mean;
                     pm.median[0] = cs1.median;
                     pm.median[1] = cs2.median;
                     pm.mode[0] = cs1.mode;
                     pm.mode[1] = cs2.mode;
                     pm.dot11 = cs1.sumsq;
                     pm.dot12 = s12;
                     pm.dot22 = cs2.sumsq;
                     pm.h1 = cs1.sum;
                     pm.h2 = cs2.sum;
                     if (m > 0) {
                       const double inv_m = 1.0 / static_cast<double>(m);
                       pm.cov11 = cs1.sumsq * inv_m - cs1.mean * cs1.mean;
                       pm.cov12 = s12 * inv_m - cs1.mean * cs2.mean;
                       pm.cov22 = cs2.sumsq * inv_m - cs2.mean * cs2.mean;
                     } else {
                       pm.cov11 = pm.cov12 = pm.cov22 = 0;
                     }
                   }
                 });

  series_stats_.resize(n);
  series_affine_.resize(n);
  fold_stats(n);
  ParallelChunks(exec, n, [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const double* s = data.ColumnData(static_cast<ts::SeriesId>(j));
      const ColumnStats& cs = columns[j];
      SeriesStats& st = series_stats_[j];
      st.sum = cs.sum;
      st.sumsq = cs.sumsq;
      st.mean = m == 0 ? 0.0 : cs.sum / static_cast<double>(m);
      st.variance =
          m == 0 ? 0.0
                 : std::max(0.0, cs.sumsq / static_cast<double>(m) - st.mean * st.mean);

      // Series-level fit s ≈ gain·r + offset (normal equations on [r, 1]).
      const int cluster = clustering_.assignment[j];
      const double* r = clustering_.centers.ColData(static_cast<std::size_t>(cluster));
      double rs;
      if (partials != nullptr) {
        partials->series[j].SlideTo(
            anchor, m, [r, s](std::size_t i, double* v) { v[0] = r[i] * s[i]; }, &rs,
            &chunk_stats[chunk]);
      } else {
        rs = kernels::BlockedDot(r, s, m, anchor);
      }
      // The centre's normal-equation diagonals are the column-stats sums
      // (same accumulation chains, bitwise equal).
      const double rr = columns[n + static_cast<std::size_t>(cluster)].sumsq;
      const double hr = columns[n + static_cast<std::size_t>(cluster)].sum;
      const double md = static_cast<double>(m);
      const double det = rr * md - hr * hr;
      SeriesAffine& sa = series_affine_[j];
      if (std::fabs(det) < 1e-12 * (std::fabs(rr) + 1.0) * md) {
        sa.gain = 0.0;
        sa.offset = st.mean;
      } else {
        sa.gain = (rs * md - hr * cs.sum) / det;
        sa.offset = (rr * cs.sum - hr * rs) / det;
      }
    }
  });

  center_loc_.assign(3, std::vector<double>(k, 0.0));
  for (std::size_t l = 0; l < k; ++l) {
    center_loc_[0][l] = columns[n + l].mean;
    center_loc_[1][l] = columns[n + l].median;
    center_loc_[2][l] = columns[n + l].mode;
  }
  if (partials != nullptr) {
    for (const kernels::BlockSpanStats& s : chunk_stats) partials->last.Add(s);
  }
}

const AffineRecord* AffinityModel::FindRelationship(const ts::SequencePair& e) const {
  const auto it = aff_hash_.find(e.Key());
  return it == aff_hash_.end() ? nullptr : &it->second;
}

const PairMatrixMeasures* AffinityModel::FindPivotMeasures(const PivotPair& p) const {
  const auto it = pivot_hash_.find(p.Key());
  return it == pivot_hash_.end() ? nullptr : &it->second.measures;
}

StatusOr<double> AffinityModel::CenterLocation(Measure measure, int cluster) const {
  const int row = LocationRow(measure);
  if (row < 0) {
    return Status::InvalidArgument(std::string(MeasureName(measure)) + " is not an L-measure");
  }
  if (cluster < 0 || static_cast<std::size_t>(cluster) >= clustering_.k()) {
    return Status::OutOfRange("cluster id out of range");
  }
  return center_loc_[static_cast<std::size_t>(row)][static_cast<std::size_t>(cluster)];
}

StatusOr<double> AffinityModel::SeriesMeasure(Measure measure, ts::SeriesId v) const {
  if (v >= data_.n()) return Status::OutOfRange("series id out of range");
  const int row = LocationRow(measure);
  if (row < 0) {
    return Status::InvalidArgument(std::string(MeasureName(measure)) + " is not an L-measure");
  }
  const int cluster = clustering_.assignment[v];
  const SeriesAffine& sa = series_affine_[v];
  const double center_value =
      center_loc_[static_cast<std::size_t>(row)][static_cast<std::size_t>(cluster)];
  // Eq. (5) in 1-D: L(s_v) ≈ gain·L(r) + offset. Exact for the mean;
  // approximate for median/mode (affine maps are monotone, so the quantile
  // and histogram structure are preserved up to noise).
  return sa.gain * center_value + sa.offset;
}

StatusOr<double> AffinityModel::PairMeasure(Measure measure, const ts::SequencePair& e) const {
  if (e.v >= data_.n()) return Status::OutOfRange("series id out of range");
  if (IsLocation(measure)) {
    return Status::InvalidArgument(std::string(MeasureName(measure)) + " is not a pair measure");
  }
  const AffineRecord* rec = FindRelationship(e);
  if (rec == nullptr) {
    return Status::NotFound("no affine relationship for pair (" + std::to_string(e.u) + "," +
                            std::to_string(e.v) + ")");
  }
  const PairMatrixMeasures* pm = FindPivotMeasures(rec->pivot);
  AFFINITY_CHECK(pm != nullptr);

  switch (measure) {
    case Measure::kCovariance:
      return PropagateCovariance(*pm, rec->transform);
    case Measure::kDotProduct:
      return PropagateDotProduct(*pm, rec->transform);
    case Measure::kCorrelation: {
      AFFINITY_ASSIGN_OR_RETURN(double u, PairNormalizer(measure, e));
      if (u == 0.0) return 0.0;
      return PropagateCovariance(*pm, rec->transform) / u;
    }
    case Measure::kCosine: {
      AFFINITY_ASSIGN_OR_RETURN(double u, PairNormalizer(measure, e));
      if (u == 0.0) return 0.0;
      return PropagateDotProduct(*pm, rec->transform) / u;
    }
    case Measure::kJaccard: {
      const double d = PropagateDotProduct(*pm, rec->transform);
      const double denom = series_stats_[e.u].sumsq + series_stats_[e.v].sumsq - d;
      return denom == 0.0 ? 0.0 : d / denom;
    }
    case Measure::kDice: {
      const double d = PropagateDotProduct(*pm, rec->transform);
      const double denom = series_stats_[e.u].sumsq + series_stats_[e.v].sumsq;
      return denom == 0.0 ? 0.0 : 2.0 * d / denom;
    }
    default:
      return Status::InvalidArgument("unsupported measure");
  }
}

Status AffinityModel::PairMeasures6(const ts::SequencePair& e, double out[6]) const {
  if (e.v >= data_.n()) return Status::OutOfRange("series id out of range");
  const AffineRecord* rec = FindRelationship(e);
  if (rec == nullptr) {
    return Status::NotFound("no affine relationship for pair (" + std::to_string(e.u) + "," +
                            std::to_string(e.v) + ")");
  }
  PairMeasures6From(*rec, e, out);
  return Status::OK();
}

void AffinityModel::PairMeasures6From(const AffineRecord& rec, const ts::SequencePair& e,
                                      double out[6]) const {
  const PairMatrixMeasures* pm = FindPivotMeasures(rec.pivot);
  AFFINITY_CHECK(pm != nullptr);
  PairMeasures6From(rec, e, *pm, out);
}

void AffinityModel::PairMeasures6From(const AffineRecord& rec, const ts::SequencePair& e,
                                      const PairMatrixMeasures& pm, double out[6]) const {
  // The same propagation and normalizer expressions as PairMeasure /
  // PairNormalizer, evaluated once and reused — every quotient below sees
  // the identical operands, so each slot matches the per-measure path bit
  // for bit.
  const double cov = PropagateCovariance(pm, rec.transform);
  const double dot = PropagateDotProduct(pm, rec.transform);
  const SeriesStats& su = series_stats_[e.u];
  const SeriesStats& sv = series_stats_[e.v];
  const double u_corr = std::sqrt(su.variance * sv.variance);
  const double u_cos = std::sqrt(su.sumsq * sv.sumsq);
  out[0] = cov;
  out[1] = dot;
  out[2] = u_corr == 0.0 ? 0.0 : cov / u_corr;
  out[3] = u_cos == 0.0 ? 0.0 : dot / u_cos;
  const double jaccard_denom = su.sumsq + sv.sumsq - dot;
  out[4] = jaccard_denom == 0.0 ? 0.0 : dot / jaccard_denom;
  const double dice_denom = su.sumsq + sv.sumsq;
  out[5] = dice_denom == 0.0 ? 0.0 : 2.0 * dot / dice_denom;
}

StatusOr<double> AffinityModel::PairNormalizer(Measure measure, const ts::SequencePair& e) const {
  if (e.v >= data_.n()) return Status::OutOfRange("series id out of range");
  switch (measure) {
    case Measure::kCorrelation:
      return std::sqrt(series_stats_[e.u].variance * series_stats_[e.v].variance);
    case Measure::kCosine:
      return std::sqrt(series_stats_[e.u].sumsq * series_stats_[e.v].sumsq);
    default:
      return Status::InvalidArgument(std::string(MeasureName(measure)) +
                                     " has no separable normalizer");
  }
}

StatusOr<AffinityModel> RunSymex(const ts::DataMatrix& data, AfclstResult clustering,
                                 const SymexOptions& symex_options, const ExecContext& exec) {
  if (data.n() < 2) {
    return Status::InvalidArgument("SYMEX requires at least 2 series");
  }
  AffinityModel model;
  model.data_ = data;
  model.clustering_ = std::move(clustering);

  // Marching (sequential structure discovery) + fitting (parallel).
  {
    Stopwatch watch;
    model.aff_hash_.reserve(
        std::min(ts::SequencePairCount(data.n()), symex_options.max_relationships));
    SymexRunner runner(model.data_, model.clustering_, symex_options, &model.aff_hash_,
                       &model.pivot_hash_, &model.stats_);
    runner.March();
    runner.Fit(exec);
    model.stats_.march_seconds = watch.ElapsedSeconds();
  }

  // Pre-processing: pivot measures, per-series stats, series-level
  // relationships, centre L-measures (the one-time O(nk·m + n·m) cost).
  {
    Stopwatch watch;
    model.RecomputeDerived(exec);
    model.stats_.preprocess_seconds = watch.ElapsedSeconds();
  }

  model.stats_.relationships = model.aff_hash_.size();
  model.stats_.pivots = model.pivot_hash_.size();
  return model;
}

StatusOr<AffinityModel> BuildAffinityModel(const ts::DataMatrix& data,
                                           const AfclstOptions& afclst_options,
                                           const SymexOptions& symex_options,
                                           const ExecContext& exec) {
  Stopwatch watch;
  AFFINITY_ASSIGN_OR_RETURN(AfclstResult clustering, RunAfclst(data, afclst_options, exec));
  const double afclst_seconds = watch.ElapsedSeconds();
  AFFINITY_ASSIGN_OR_RETURN(AffinityModel model,
                            RunSymex(data, std::move(clustering), symex_options, exec));
  model.stats_.afclst_seconds = afclst_seconds;
  return model;
}

}  // namespace affinity::core
