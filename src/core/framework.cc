#include "core/framework.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"

namespace affinity::core {

StatusOr<Affinity> Affinity::Build(const ts::DataMatrix& data, const AffinityOptions& options) {
  std::unique_ptr<ThreadPool> pool;
  if (options.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
  }
  ExecContext exec{pool.get()};
  AFFINITY_ASSIGN_OR_RETURN(Affinity fw, BuildWith(data, options, exec));
  fw.pool_ = std::move(pool);  // transfer ownership; exec_ already points at it
  return fw;
}

StatusOr<Affinity> Affinity::BuildWith(const ts::DataMatrix& data, const AffinityOptions& options,
                                       const ExecContext& exec) {
  Stopwatch total;
  // A single NaN/Inf sample silently poisons every moment, fit and index
  // key downstream — reject it here, at the only gate all build paths
  // share, with a coordinate the caller can act on. (Dirty sources repair
  // through ts::StreamAligner before any build sees them.) The O(n·m)
  // scan is noise next to the O(n²·m) build it protects.
  for (std::size_t j = 0; j < data.n(); ++j) {
    const double* col = data.ColumnData(static_cast<ts::SeriesId>(j));
    for (std::size_t i = 0; i < data.m(); ++i) {
      if (!std::isfinite(col[i])) {
        return Status::InvalidArgument("data(" + std::to_string(i) + ", " + std::to_string(j) +
                                       ") is not finite; repair dirty input through "
                                       "ts::StreamAligner before building");
      }
    }
  }
  AFFINITY_ASSIGN_OR_RETURN(AffinityModel model,
                            BuildAffinityModel(data, options.afclst, options.symex, exec));
  AFFINITY_ASSIGN_OR_RETURN(Affinity fw, FromModelWith(std::move(model), options, exec));
  fw.profile_.total_seconds = total.ElapsedSeconds();  // include the model build
  return fw;
}

StatusOr<Affinity> Affinity::FromModel(AffinityModel model, const AffinityOptions& options) {
  std::unique_ptr<ThreadPool> pool;
  if (options.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
  }
  ExecContext exec{pool.get()};
  AFFINITY_ASSIGN_OR_RETURN(Affinity fw, FromModelWith(std::move(model), options, exec));
  fw.pool_ = std::move(pool);  // transfer ownership; exec_ already points at it
  return fw;
}

StatusOr<Affinity> Affinity::FromModelWith(AffinityModel model, const AffinityOptions& options,
                                           const ExecContext& exec) {
  Stopwatch total;
  Affinity fw;
  fw.exec_ = exec;
  fw.profile_.threads = exec.threads();

  fw.model_ = std::make_unique<AffinityModel>(std::move(model));
  fw.profile_.afclst_seconds = fw.model_->stats().afclst_seconds;
  fw.profile_.symex_seconds = fw.model_->stats().march_seconds;
  fw.profile_.preprocess_seconds = fw.model_->stats().preprocess_seconds;

  if (options.build_scape) {
    Stopwatch watch;
    AFFINITY_ASSIGN_OR_RETURN(ScapeIndex index,
                              ScapeIndex::Build(*fw.model_, options.scape, exec));
    fw.scape_ = std::make_unique<ScapeIndex>(std::move(index));
    fw.profile_.scape_seconds = watch.ElapsedSeconds();
  }

  if (options.build_dft) {
    Stopwatch watch;
    AFFINITY_ASSIGN_OR_RETURN(
        dft::DftCorrelationEstimator wf,
        dft::DftCorrelationEstimator::Build(fw.model_->data(), options.dft_coefficients, exec));
    fw.wf_ = std::make_unique<dft::DftCorrelationEstimator>(std::move(wf));
    fw.dft_coefficients_ = options.dft_coefficients;
    fw.profile_.dft_seconds = watch.ElapsedSeconds();
  }

  fw.engine_ = std::make_unique<QueryEngine>(&fw.model_->data());
  fw.engine_->AttachModel(fw.model_.get());
  if (fw.scape_) fw.engine_->AttachScape(fw.scape_.get());
  if (fw.wf_) fw.engine_->EnableDft(options.dft_coefficients);
  fw.engine_->SetExec(exec);

  fw.profile_.total_seconds = total.ElapsedSeconds();
  return fw;
}

Status Affinity::RefreshWf() {
  if (wf_ == nullptr) return Status::OK();
  AFFINITY_ASSIGN_OR_RETURN(
      dft::DftCorrelationEstimator wf,
      dft::DftCorrelationEstimator::Build(model_->data(), dft_coefficients_, exec_));
  *wf_ = std::move(wf);
  return Status::OK();
}

double PercentRmse(const std::vector<double>& truth, const std::vector<double>& approx) {
  AFFINITY_CHECK_EQ(truth.size(), approx.size());
  if (truth.empty()) return 0.0;
  const auto [min_it, max_it] = std::minmax_element(truth.begin(), truth.end());
  double normalizer = *max_it - *min_it;
  if (normalizer == 0.0) normalizer = 1.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = (truth[i] - approx[i]) / normalizer;
    // affinity-lint: allow(fp-accumulate): evaluation-harness RMSE — sequential diagnostic
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size())) * 100.0;
}

}  // namespace affinity::core
