#ifndef AFFINITY_CORE_PLANNER_H_
#define AFFINITY_CORE_PLANNER_H_

/// \file planner.h
/// A small rule/cost-based query planner (extension).
///
/// The paper benchmarks each strategy in isolation; a deployed system must
/// *choose* one per query. The planner encodes the cost model of Sections
/// 4–5 — per-measure naive kernel costs, O(1) affine propagation, and
/// index-scan costs — plus the hard capability rules (WF is correlation-
/// only, SCAPE cannot answer MEC, Jaccard/Dice are not indexable), and
/// returns the cheapest admissible strategy with an explanation.
///
/// `QueryEngine` (query.h) consults the planner for every
/// `QueryMethod::kAuto` query, deriving the capability set from whatever
/// has been attached; the chosen plan is surfaced in the response.
///
/// The planner never selects WF: its sketch-truncated correlations are a
/// coarse, per-query approximation, so automatic dispatch only reports
/// its availability in the rationale and callers opt in with an explicit
/// kDft. (WA/SCAPE answers are exact to machine precision for pair
/// measures — Lemma 1 — while median/mode propagate through the affine
/// fit as the close approximation the paper's design accepts; see
/// symex.h and DESIGN.md §3.)
///
/// Costs are abstract "scalar operation" counts, good for ranking
/// strategies, not for predicting wall time.

#include <cstdint>
#include <string>
#include <string_view>

#include "core/measures.h"

namespace affinity::core {

/// Strategy used to answer a query. `kAuto` defers the choice to the
/// QueryPlanner at query time. (Defined here — the planner is the layer
/// below the engine — and re-exported by query.h.)
enum class QueryMethod { kNaive, kAffine, kDft, kScape, kAuto };

/// Display name: "WN", "WA", "WF", "SCAPE", "AUTO".
std::string_view QueryMethodName(QueryMethod method);

struct PlanChoice;

/// Marks `plan` as answered from a published read-optimized snapshot
/// (serve/serving_snapshot.h) of epoch `generation`. Appends to the
/// rationale only — method and cost are untouched, so a snapshot-served
/// answer stays bitwise identical to the live engine's while EXPLAIN
/// output still shows where it ran.
void AnnotateSnapshotServed(PlanChoice* plan, std::uint64_t generation);

/// Marks `plan` as post-filtered by the per-series quality predicate
/// (DESIGN.md §12): candidates touching a series whose composite quality
/// score fell below `min_quality` were excluded (`excluded` of them).
/// Appends to the rationale only — method and cost are untouched, so the
/// quality filter composes with any strategy.
void AnnotateQualityFiltered(PlanChoice* plan, double min_quality, std::size_t excluded);

/// The planner's verdict for one query.
struct PlanChoice {
  QueryMethod method = QueryMethod::kNaive;
  double estimated_cost = 0.0;  ///< abstract scalar-op count
  std::string rationale;        ///< human-readable explanation
};

/// Plans queries for a dataset of n series × m samples given which
/// structures have been built.
class QueryPlanner {
 public:
  /// Which strategies are available.
  struct Capabilities {
    bool has_model = false;    ///< WA (SYMEX output)
    bool has_scape = false;    ///< SCAPE index
    bool has_dft = false;      ///< WF sketches
    bool has_quality = false;  ///< per-series quality surface (DESIGN.md §12)
  };

  /// Shard topology of the deployment answering the query. The default is
  /// the unsharded (single-instance) case. With `shards > 1` the planner
  /// plans the *per-shard* strategy (n then means series per shard) and
  /// charges every candidate the scatter-gather surcharge: pairs spanning
  /// two shards are invisible to every per-shard structure, so the router
  /// evaluates them naively over the aligned shard snapshots (query.h's
  /// `EvaluateCrossPairs`) whatever strategy the shards run.
  struct Topology {
    std::size_t shards = 1;       ///< independent model instances
    std::size_t cross_pairs = 0;  ///< sequence pairs spanning two shards
    /// Cross pairs currently served from the router's warm co-moment
    /// cache (O(1) per query instead of a raw column sweep); ≤ cross_pairs.
    std::size_t cached_cross_pairs = 0;
  };

  QueryPlanner(std::size_t n, std::size_t m, Capabilities caps) : n_(n), m_(m), caps_(caps) {}

  QueryPlanner(std::size_t n, std::size_t m, Capabilities caps, Topology topology)
      : n_(n), m_(m), caps_(caps), topology_(topology) {}

  /// Plans Query 1 for a ψ of `ids` series.
  PlanChoice PlanMec(Measure measure, std::size_t ids) const;

  /// Plans Query 2 (full MET sweep). `selectivity` is the expected fraction
  /// of entities in the result (0..1; used to cost the index scan).
  PlanChoice PlanMet(Measure measure, double selectivity = 0.5) const;

  /// Plans Query 3 (full MER sweep).
  PlanChoice PlanMer(Measure measure, double selectivity = 0.5) const;

  /// Plans a top-k query.
  PlanChoice PlanTopK(Measure measure, std::size_t k) const;

  /// Per-entity naive kernel cost of a measure (scalar ops) — the cost
  /// model behind every plan; exposed for tests and EXPLAIN output.
  double NaiveUnitCost(Measure measure) const;

 private:
  PlanChoice PlanSelection(Measure measure, double selectivity, bool top_k,
                           std::size_t k) const;

  /// Adds the scatter-gather surcharge (cross-shard WN sweep + k-way
  /// merge) to a per-shard plan and annotates the rationale. Identity when
  /// the topology is unsharded or the measure is per-series (L-measures
  /// never span shards).
  PlanChoice Shardify(PlanChoice choice, Measure measure) const;

  std::size_t n_;
  std::size_t m_;
  Capabilities caps_;
  Topology topology_{};
};

}  // namespace affinity::core

#endif  // AFFINITY_CORE_PLANNER_H_
