#include "core/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace affinity::core {

namespace {

constexpr char kMagic[4] = {'A', 'F', 'F', 'M'};

/// Buffered little-endian-naive binary writer.
class Writer {
 public:
  explicit Writer(std::ostream* out) : out_(out) {}

  void U32(std::uint32_t v) { Raw(&v, sizeof v); }
  void U64(std::uint64_t v) { Raw(&v, sizeof v); }
  void Size(std::size_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v) { Raw(&v, sizeof v); }
  void Bool(bool v) {
    const std::uint8_t b = v ? 1 : 0;
    Raw(&b, 1);
  }
  void Str(const std::string& s) {
    Size(s.size());
    Raw(s.data(), s.size());
  }
  void F64Span(const double* data, std::size_t count) { Raw(data, count * sizeof(double)); }

  bool ok() const { return static_cast<bool>(*out_); }

 private:
  void Raw(const void* data, std::size_t bytes) {
    out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  }
  std::ostream* out_;
};

/// Binary reader with truncation checks; any failure poisons the stream.
class Reader {
 public:
  explicit Reader(std::istream* in) : in_(in) {}

  std::uint32_t U32() {
    std::uint32_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  std::uint64_t U64() {
    std::uint64_t v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  std::size_t Size(std::size_t sanity_max) {
    const std::uint64_t v = U64();
    if (v > sanity_max) fail_ = true;
    return fail_ ? 0 : static_cast<std::size_t>(v);
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof v);
    return v;
  }
  bool Bool() {
    std::uint8_t b = 0;
    Raw(&b, 1);
    if (b > 1) fail_ = true;
    return b == 1;
  }
  std::string Str() {
    const std::size_t len = Size(1u << 20);
    std::string s(len, '\0');
    Raw(s.data(), len);
    return s;
  }
  void F64Span(double* data, std::size_t count) { Raw(data, count * sizeof(double)); }

  bool ok() const { return !fail_ && static_cast<bool>(*in_); }

 private:
  void Raw(void* data, std::size_t bytes) {
    if (fail_) return;
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    if (in_->gcount() != static_cast<std::streamsize>(bytes)) fail_ = true;
  }
  std::istream* in_;
  bool fail_ = false;
};

void WriteMatrix(Writer* w, const la::Matrix& mat) {
  w->Size(mat.rows());
  w->Size(mat.cols());
  for (std::size_t j = 0; j < mat.cols(); ++j) w->F64Span(mat.ColData(j), mat.rows());
}

la::Matrix ReadMatrix(Reader* r) {
  const std::size_t rows = r->Size(1u << 28);
  const std::size_t cols = r->Size(1u << 28);
  if (!r->ok()) return la::Matrix();
  la::Matrix mat(rows, cols);
  for (std::size_t j = 0; j < cols; ++j) r->F64Span(mat.ColData(j), rows);
  return mat;
}

void WritePivot(Writer* w, const PivotPair& p) {
  w->U32(p.series);
  w->U32(p.cluster);
  w->Bool(p.series_first);
}

PivotPair ReadPivot(Reader* r) {
  PivotPair p;
  p.series = r->U32();
  p.cluster = r->U32();
  p.series_first = r->Bool();
  return p;
}

void WriteMeasures(Writer* w, const PairMatrixMeasures& pm) {
  for (int i = 0; i < 2; ++i) w->F64(pm.mean[i]);
  for (int i = 0; i < 2; ++i) w->F64(pm.median[i]);
  for (int i = 0; i < 2; ++i) w->F64(pm.mode[i]);
  w->F64(pm.cov11);
  w->F64(pm.cov12);
  w->F64(pm.cov22);
  w->F64(pm.dot11);
  w->F64(pm.dot12);
  w->F64(pm.dot22);
  w->F64(pm.h1);
  w->F64(pm.h2);
  w->Size(pm.m);
}

PairMatrixMeasures ReadMeasures(Reader* r) {
  PairMatrixMeasures pm;
  for (int i = 0; i < 2; ++i) pm.mean[i] = r->F64();
  for (int i = 0; i < 2; ++i) pm.median[i] = r->F64();
  for (int i = 0; i < 2; ++i) pm.mode[i] = r->F64();
  pm.cov11 = r->F64();
  pm.cov12 = r->F64();
  pm.cov22 = r->F64();
  pm.dot11 = r->F64();
  pm.dot12 = r->F64();
  pm.dot22 = r->F64();
  pm.h1 = r->F64();
  pm.h2 = r->F64();
  pm.m = r->Size(1u << 30);
  return pm;
}

}  // namespace

Status SaveModel(const AffinityModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  AFFINITY_RETURN_IF_ERROR(WriteModelStream(model, out));
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Status WriteModelStream(const AffinityModel& model, std::ostream& out) {
  Writer w(&out);

  out.write(kMagic, sizeof kMagic);
  w.U32(kModelFormatVersion);

  // Data matrix + names + block-grid anchor.
  WriteMatrix(&w, model.data_.matrix());
  w.Size(model.data_.names().size());
  for (const std::string& name : model.data_.names()) w.Str(name);
  w.Size(model.data_.anchor_row());

  // Clustering.
  WriteMatrix(&w, model.clustering_.centers);
  w.Size(model.clustering_.assignment.size());
  for (int a : model.clustering_.assignment) w.U32(static_cast<std::uint32_t>(a));
  w.U32(static_cast<std::uint32_t>(model.clustering_.iterations));
  w.Size(model.clustering_.projection_errors.size());
  w.F64Span(model.clustering_.projection_errors.data(),
            model.clustering_.projection_errors.size());

  // affHash — ForEachRelationship visits in ascending key order, so the
  // byte stream is canonical for a given model: it cannot drift with the
  // hash-table layout. The reader inserts by key, so order is free.
  w.Size(model.aff_hash_.size());
  model.ForEachRelationship([&](const ts::SequencePair& e, const AffineRecord& rec) {
    w.U64((static_cast<std::uint64_t>(e.u) << 32) | static_cast<std::uint64_t>(e.v));
    WritePivot(&w, rec.pivot);
    w.F64(rec.transform.a11);
    w.F64(rec.transform.a21);
    w.F64(rec.transform.a12);
    w.F64(rec.transform.a22);
    w.F64(rec.transform.b1);
    w.F64(rec.transform.b2);
  });

  // pivotHash — same canonical order as affHash.
  w.Size(model.pivot_hash_.size());
  model.ForEachPivot([&](const PivotPair& p, const PairMatrixMeasures& pm) {
    w.U64(p.Key());
    WritePivot(&w, p);
    WriteMeasures(&w, pm);
  });

  // Per-series stats + series-level relationships.
  w.Size(model.series_stats_.size());
  for (const SeriesStats& st : model.series_stats_) {
    w.F64(st.mean);
    w.F64(st.variance);
    w.F64(st.sumsq);
    w.F64(st.sum);
  }
  w.Size(model.series_affine_.size());
  for (const SeriesAffine& sa : model.series_affine_) {
    w.F64(sa.gain);
    w.F64(sa.offset);
  }

  // Centre L-measures.
  w.Size(model.center_loc_.size());
  for (const auto& row : model.center_loc_) {
    w.Size(row.size());
    w.F64Span(row.data(), row.size());
  }

  // Build stats.
  w.Size(model.stats_.relationships);
  w.Size(model.stats_.pivots);
  w.Size(model.stats_.cache_hits);
  w.Size(model.stats_.cache_misses);
  w.F64(model.stats_.afclst_seconds);
  w.F64(model.stats_.march_seconds);
  w.F64(model.stats_.preprocess_seconds);

  if (!w.ok()) return Status::IoError("model stream write failed");
  return Status::OK();
}

StatusOr<AffinityModel> LoadModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  auto model = ReadModelStream(in);
  if (!model.ok()) {
    return Status(model.status().code(), "'" + path + "': " + model.status().message());
  }
  return model;
}

StatusOr<AffinityModel> ReadModelStream(std::istream& in) {
  Reader r(&in);

  char magic[4] = {};
  in.read(magic, sizeof magic);
  if (in.gcount() != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not an AFFINITY model payload");
  }
  const std::uint32_t version = r.U32();
  if (version < kMinModelFormatVersion || version > kModelFormatVersion) {
    return Status::InvalidArgument("unsupported model format version " +
                                   std::to_string(version));
  }

  AffinityModel model;

  la::Matrix values = ReadMatrix(&r);
  const std::size_t name_count = r.Size(1u << 28);
  if (!r.ok() || name_count != values.cols()) {
    return Status::InvalidArgument("corrupt data-matrix section");
  }
  std::vector<std::string> names(name_count);
  for (auto& name : names) name = r.Str();
  // v1 payloads predate the block-grid anchor; they were written (and
  // their measures computed) at the historic phase-0 order, so 0 is the
  // faithful default, not merely a safe one.
  const std::size_t anchor = version >= 2 ? r.Size(~std::size_t{0} >> 1) : 0;
  if (!r.ok()) return Status::InvalidArgument("corrupt names section");
  model.data_ = ts::DataMatrix(std::move(values), std::move(names));
  model.data_.set_anchor_row(anchor);

  model.clustering_.centers = ReadMatrix(&r);
  const std::size_t assign_count = r.Size(1u << 28);
  model.clustering_.assignment.resize(assign_count);
  for (auto& a : model.clustering_.assignment) a = static_cast<int>(r.U32());
  model.clustering_.iterations = static_cast<int>(r.U32());
  const std::size_t proj_count = r.Size(1u << 28);
  model.clustering_.projection_errors.resize(proj_count);
  r.F64Span(model.clustering_.projection_errors.data(), proj_count);
  if (!r.ok() || assign_count != model.data_.n()) {
    return Status::InvalidArgument("corrupt clustering section");
  }

  const std::size_t rel_count = r.Size(1u << 30);
  model.aff_hash_.reserve(rel_count);
  for (std::size_t i = 0; i < rel_count && r.ok(); ++i) {
    const std::uint64_t key = r.U64();
    AffineRecord rec;
    rec.pivot = ReadPivot(&r);
    rec.transform.a11 = r.F64();
    rec.transform.a21 = r.F64();
    rec.transform.a12 = r.F64();
    rec.transform.a22 = r.F64();
    rec.transform.b1 = r.F64();
    rec.transform.b2 = r.F64();
    model.aff_hash_.emplace(key, rec);
  }

  const std::size_t pivot_count = r.Size(1u << 30);
  model.pivot_hash_.reserve(pivot_count);
  for (std::size_t i = 0; i < pivot_count && r.ok(); ++i) {
    const std::uint64_t key = r.U64();
    PivotHashEntry entry;
    entry.pivot = ReadPivot(&r);
    entry.measures = ReadMeasures(&r);
    model.pivot_hash_.emplace(key, entry);
  }

  const std::size_t stats_count = r.Size(1u << 28);
  model.series_stats_.resize(stats_count);
  for (auto& st : model.series_stats_) {
    st.mean = r.F64();
    st.variance = r.F64();
    st.sumsq = r.F64();
    st.sum = r.F64();
  }
  const std::size_t affine_count = r.Size(1u << 28);
  model.series_affine_.resize(affine_count);
  for (auto& sa : model.series_affine_) {
    sa.gain = r.F64();
    sa.offset = r.F64();
  }
  if (!r.ok() || stats_count != model.data_.n() || affine_count != model.data_.n()) {
    return Status::InvalidArgument("corrupt per-series section");
  }

  const std::size_t loc_rows = r.Size(16);
  model.center_loc_.resize(loc_rows);
  for (auto& row : model.center_loc_) {
    const std::size_t cols = r.Size(1u << 28);
    row.resize(cols);
    r.F64Span(row.data(), cols);
  }

  model.stats_.relationships = r.Size(1u << 30);
  model.stats_.pivots = r.Size(1u << 30);
  model.stats_.cache_hits = r.Size(~std::size_t{0} >> 1);
  model.stats_.cache_misses = r.Size(~std::size_t{0} >> 1);
  model.stats_.afclst_seconds = r.F64();
  model.stats_.march_seconds = r.F64();
  model.stats_.preprocess_seconds = r.F64();

  if (!r.ok()) return Status::InvalidArgument("truncated or corrupt payload");
  if (model.stats_.relationships != model.aff_hash_.size() ||
      model.stats_.pivots != model.pivot_hash_.size()) {
    return Status::InvalidArgument("inconsistent section counts");
  }
  return model;
}

}  // namespace affinity::core
