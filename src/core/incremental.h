#ifndef AFFINITY_CORE_INCREMENTAL_H_
#define AFFINITY_CORE_INCREMENTAL_H_

/// \file incremental.h
/// Incremental sliding-window maintenance of a built AFFINITY stack
/// (DESIGN.md §8) — the delta alternative to rebuilding AFCLST → SYMEX+ →
/// SCAPE from scratch every refresh.
///
/// The maintainer freezes the model *structure* captured at the last full
/// build — cluster assignment ω, the pivot set, and the marching-order
/// relationship set — and slides everything *numeric* under it:
///
///  * cluster centres extend linearly to new rows through frozen
///    combination weights (the centre is a linear combination of its
///    centered member columns, so the combination evaluates exactly on
///    fresh samples);
///  * per-series moments, pivot measures, series-level relationships and
///    centre L-measures are recomputed exactly over the new window
///    (`AffinityModel::RecomputeDerived`, O(n·window)) — published moments
///    and measures stay bit-identical to a from-scratch build over the
///    same window and clustering;
///  * the O(n²) per-pair right-hand sides are maintained by ring-buffer
///    add/evict updates (`ts::RollingCrossSums`, O(interval) per pair) and
///    re-solved against the pivots' refreshed 3×3 normal-equation factors;
///    a per-pair residual monitor triggers full-precision refits (which
///    reproduce a from-scratch fit bit for bit), and a round-robin exact
///    refit cadence bounds accumulated round-off for the rest;
///  * the SCAPE index re-keys in place (`ScapeIndex::Refresh`).
///
/// A model-level drift monitor — the population mean relative fit residual,
/// the quantity `core/quality` samples — escalates to a full rebuild when
/// the frozen clustering stops describing the data.
///
/// All loops fan out over the caller's ExecContext with the §7 determinism
/// guarantee: the maintained model is identical at any thread count.

#include <cstddef>
#include <memory>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/fit_kernels.h"
#include "core/scape.h"
#include "core/symex.h"
#include "ts/rolling.h"

namespace affinity::core {

/// Tuning knobs of the incremental maintenance path.
struct IncrementalOptions {
  /// A relationship whose relative fit residual has *risen* by more than
  /// this since its last exact refit is refit at full precision (exact
  /// right-hand side recomputation) instead of delta-updated. The trigger
  /// is on drift, not level: a stably poor fit is a data property the
  /// escalation monitor owns, while a worsening one gets exact treatment
  /// where the model is moving fastest.
  double refit_drift_threshold = 0.1;
  /// Round-robin exact-refit cadence: every refresh, relationships with
  /// slot index ≡ refresh counter (mod period) are refit at full
  /// precision, so every accumulator is re-materialized at least once per
  /// `period` refreshes. 1 = refit everything every refresh, making the
  /// whole maintained model bit-identical to a from-scratch SYMEX+ build
  /// over the same window and clustering.
  std::size_t exact_refit_period = 32;
  /// Escalate to a full rebuild when the population mean relative residual
  /// exceeds `escalation_factor` × the at-build baseline +
  /// `escalation_slack`.
  double escalation_factor = 1.5;
  double escalation_slack = 0.02;
  /// Retain the blocked partial sums of every exact O(window) chain
  /// across refreshes (DESIGN.md §10): RecomputeDerived's per-column
  /// marginals, per-pivot dot12, per-series cross terms, and the
  /// accumulator re-materializations then recompute only the grid blocks
  /// a slide touched — O(interval + kBlockElems) per chain — with totals
  /// bitwise identical to the cold pass by construction. Off is the
  /// pre-retention behaviour (every refresh re-reads the whole window);
  /// kept as a knob so bench_streaming can measure the gap.
  bool retain_block_partials = true;
};

/// Per-refresh and cumulative accounting of the maintenance path.
struct MaintenanceProfile {
  std::size_t refreshes = 0;               ///< incremental refreshes run
  std::size_t rows_absorbed = 0;           ///< rows slid into the window
  std::size_t relationships_updated = 0;   ///< delta-updated re-solves
  std::size_t relationships_refit = 0;     ///< full-precision refits
  std::size_t tree_rekeys = 0;             ///< SCAPE index move operations
  std::size_t scape_rekeys_skipped = 0;    ///< SCAPE moves skipped (ξ and U bitwise-unchanged)
  std::size_t escalations = 0;             ///< drift-monitor trips
  /// Retained block-partial accounting (DESIGN.md §10): grid blocks
  /// recomputed vs served from the cache across every exact chain
  /// (RecomputeDerived + accumulator re-materializations).
  std::size_t recompute_blocks_touched = 0;
  std::size_t recompute_blocks_reused = 0;
  /// Leading partial blocks served from the checkpointed prefix state
  /// (an O(kPrefixStride) resume) instead of a full block re-walk.
  std::size_t recompute_prefix_resumes = 0;
  double recompute_seconds = 0.0;          ///< cumulative RecomputeDerived wall time
  double last_refresh_seconds = 0.0;
  std::size_t last_rows_absorbed = 0;
  std::size_t last_relationships_updated = 0;
  std::size_t last_relationships_refit = 0;
  std::size_t last_tree_rekeys = 0;
  std::size_t last_scape_rekeys_skipped = 0;
  std::size_t last_recompute_blocks_touched = 0;
  std::size_t last_recompute_blocks_reused = 0;
  std::size_t last_recompute_prefix_resumes = 0;
  double last_recompute_seconds = 0.0;     ///< RecomputeDerived wall time, last refresh
  /// Population mean relative fit residual after the last refresh (the
  /// drift-monitor signal) and its baseline at the last full build.
  double mean_relative_residual = 0.0;
  double baseline_mean_residual = 0.0;

  /// Serve-path publication accounting. These are filled by the epoch
  /// publisher (streaming / shard router), NOT by the maintainer, so
  /// AbsorbRefresh deliberately leaves them alone — the publish happens
  /// after the refresh's accounting is absorbed.
  std::size_t serve_fallbacks = 0;          ///< kUnavailable → live-engine answers
  std::size_t epochs_published = 0;         ///< serving snapshots published
  std::size_t epochs_delta = 0;             ///< ... of which via the delta path
  std::size_t window_segments_reused = 0;   ///< COW window segments shared with prior epoch
  std::size_t scape_runs_shared = 0;        ///< flat trees shared wholesale with prior epoch
  std::size_t scape_runs_spliced = 0;       ///< flat trees rebuilt by dirty-range splice
  std::size_t snapshot_bytes_copied = 0;    ///< bytes materialized across publishes
  double publish_seconds = 0.0;             ///< cumulative publication wall time
  double last_publish_seconds = 0.0;        ///< publication wall time, last epoch

  /// Folds one refresh's accounting (a maintainer's `last_*` readings plus
  /// its residual levels) into this cumulative record — used by the stream
  /// to accumulate across maintainer generations and by the shard router
  /// to aggregate across shards. Cumulative counters add; `last_*` and the
  /// residual levels copy (callers aggregating shards combine them with
  /// AggregateShardProfiles instead, which maxes latency and averages
  /// residuals).
  void AbsorbRefresh(const MaintenanceProfile& refresh) {
    ++refreshes;
    rows_absorbed += refresh.last_rows_absorbed;
    relationships_updated += refresh.last_relationships_updated;
    relationships_refit += refresh.last_relationships_refit;
    tree_rekeys += refresh.last_tree_rekeys;
    scape_rekeys_skipped += refresh.last_scape_rekeys_skipped;
    recompute_blocks_touched += refresh.last_recompute_blocks_touched;
    recompute_blocks_reused += refresh.last_recompute_blocks_reused;
    recompute_prefix_resumes += refresh.last_recompute_prefix_resumes;
    recompute_seconds += refresh.last_recompute_seconds;
    last_refresh_seconds = refresh.last_refresh_seconds;
    last_rows_absorbed = refresh.last_rows_absorbed;
    last_relationships_updated = refresh.last_relationships_updated;
    last_relationships_refit = refresh.last_relationships_refit;
    last_tree_rekeys = refresh.last_tree_rekeys;
    last_scape_rekeys_skipped = refresh.last_scape_rekeys_skipped;
    last_recompute_blocks_touched = refresh.last_recompute_blocks_touched;
    last_recompute_blocks_reused = refresh.last_recompute_blocks_reused;
    last_recompute_prefix_resumes = refresh.last_recompute_prefix_resumes;
    last_recompute_seconds = refresh.last_recompute_seconds;
    mean_relative_residual = refresh.mean_relative_residual;
    baseline_mean_residual = refresh.baseline_mean_residual;
  }
};

/// Cross-shard aggregation of per-shard maintenance accounting: counters
/// sum, `last_refresh_seconds` takes the slowest shard (shards refresh
/// concurrently, so the max is the wall-clock the router saw), residual
/// levels average over shards that have one.
MaintenanceProfile AggregateShardProfiles(const std::vector<MaintenanceProfile>& shards);

/// Slides a built (model, index) pair along the stream. Create() captures
/// the frozen structure and the accumulators from a freshly built model;
/// Advance() absorbs new rows. The model and index must outlive the
/// maintainer and must not be structurally modified elsewhere.
class IncrementalMaintainer {
 public:
  /// Captures maintenance state from a freshly built model (and its SCAPE
  /// index, which may be null when the deployment does not build one).
  /// O(pairs · window): materializes every per-pair accumulator exactly and
  /// records the drift-monitor baseline.
  static StatusOr<IncrementalMaintainer> Create(AffinityModel* model, ScapeIndex* scape,
                                                const IncrementalOptions& options,
                                                const ExecContext& exec = {});

  /// Slides the window by `rows` (each one aligned sample per series, in
  /// arrival order) and refreshes every layer. Returns true when the drift
  /// monitor requests escalation to a full rebuild (the refresh itself is
  /// still completed, so the snapshot stays coherent either way).
  StatusOr<bool> Advance(const std::vector<std::vector<double>>& rows,
                         const ExecContext& exec = {});

  /// As above, consuming only the first `count` entries of `rows` — the
  /// shape that lets the streaming layer hand over a preallocated row pool
  /// whose capacity never shrinks, keeping the append hot path
  /// allocation-free (DESIGN.md §9). `count` must be ≤ rows.size().
  StatusOr<bool> Advance(const std::vector<std::vector<double>>& rows, std::size_t count,
                         const ExecContext& exec);

  /// Maintenance accounting.
  const MaintenanceProfile& profile() const { return profile_; }

  /// The analysis window length (rows).
  std::size_t window() const { return window_; }

  /// Directs the SCAPE refresh inside each Advance to record its dirty
  /// ξ-ranges into `log` (see ScapeIndex::Refresh) — the contract the
  /// delta snapshot builder needs. Pass nullptr to stop recording. The
  /// log must outlive the maintainer or be reset before destruction.
  void set_scape_delta_log(ScapeDeltaLog* log) { scape_delta_log_ = log; }

  /// Fault injection for recovery tests: the next `count` Advance calls
  /// fail with Internal before touching any state, exercising the
  /// caller's escalation path (streaming re-freezes the whole stack from
  /// the table). The counter decrements per failed call and the maintainer
  /// behaves normally once it reaches zero.
  void InjectFailuresForTesting(std::size_t count) { inject_failures_ = count; }

 private:
  /// One maintained relationship: the hash slot it publishes into plus its
  /// windowed right-hand-side accumulators and monitor state.
  struct PairSlot {
    ts::SequencePair e;
    AffineRecord* rec = nullptr;     ///< stable pointer into affHash
    std::size_t pivot_slot = 0;      ///< index into pivot_slots_
    ts::RollingCrossSums rhs;        ///< (Σc1·t, Σc2·t, Σt) over the window
    /// Retained block partials of the three rhs chains: an exact refit
    /// then re-materializes from O(interval + kBlockElems) of fresh data
    /// instead of re-reading the whole window, bitwise equal to
    /// RollingCrossSums::Reset (gated by
    /// IncrementalOptions::retain_block_partials).
    kernels::BlockChain<3> rhs_chain;
    double rel_residual = 0.0;       ///< monitor value from the last refresh
    double residual_at_refit = 0.0;  ///< level when last exactly refit
  };

  /// One maintained pivot: its hash entry plus the inverse normal-equation
  /// factor refreshed from the exactly recomputed pivot measures.
  struct PivotSlot {
    PivotHashEntry* entry = nullptr;  ///< stable pointer into pivotHash
    fit::Mat3 ginv{};
    bool invertible = false;
  };

  IncrementalMaintainer() = default;

  /// Recomputes pivot factors, re-solves / refits every relationship, and
  /// refreshes the residual monitor. `refresh_index` drives the
  /// round-robin refit schedule; kRefitAll forces exact refits everywhere
  /// (used by Create to materialize the accumulators). `span_stats`, when
  /// non-null, accumulates the retained-partial accounting of the refit
  /// re-materializations.
  static constexpr std::size_t kRefitAll = ~std::size_t{0};
  Status SolveRelationships(std::size_t refresh_index, const ExecContext& exec,
                            std::size_t* refit_count,
                            kernels::BlockSpanStats* span_stats = nullptr);

  /// The design columns of slot `s` in the *current* model matrices.
  void SlotColumns(const PairSlot& s, const double** c1, const double** c2,
                   const double** t) const;

  /// The (deterministic) exact-refit schedule: round-robin cadence plus
  /// the residual-drift trigger. Shared by the delta pass and the solve
  /// pass so a slot is never delta-updated and then re-materialized
  /// inconsistently.
  bool WillRefit(std::size_t slot_index, std::size_t refresh_index, const PairSlot& slot) const;

  AffinityModel* model_ = nullptr;
  ScapeIndex* scape_ = nullptr;
  ScapeDeltaLog* scape_delta_log_ = nullptr;
  IncrementalOptions options_;
  std::size_t window_ = 0;
  std::size_t n_ = 0;

  /// Frozen centre-extension state: per cluster, the (member, weight) list
  /// reproducing the centre as a combination of centered member columns,
  /// and the build-window means the centering froze.
  std::vector<std::vector<std::pair<ts::SeriesId, double>>> center_weights_;
  std::vector<double> frozen_means_;

  /// Every window column kept sorted (columns 0..n-1 the series, n..n+k-1
  /// the centres), maintained by O(interval) evict/insert shifts per slide
  /// so the refresh reads medians as order statistics instead of running a
  /// selection per column (`RecomputeDerived`'s sorted view).
  la::Matrix sorted_cols_;

  /// The retained block-partial cache behind RecomputeDerived (DESIGN.md
  /// §10). Owned here because its validity is exactly the maintainer's
  /// lifetime: the chains assume the frozen structure and the uniformly
  /// advancing window anchor, so escalation/rebuild/restore (which create
  /// a fresh maintainer) drop it wholesale. Unused (and empty) when
  /// `retain_block_partials` is off.
  DerivedBlockCache derived_cache_;

  std::vector<PivotSlot> pivot_slots_;
  std::vector<PairSlot> slots_;
  MaintenanceProfile profile_;
  std::size_t inject_failures_ = 0;  ///< InjectFailuresForTesting countdown
};

}  // namespace affinity::core

#endif  // AFFINITY_CORE_INCREMENTAL_H_
