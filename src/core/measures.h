#ifndef AFFINITY_CORE_MEASURES_H_
#define AFFINITY_CORE_MEASURES_H_

/// \file measures.h
/// The statistical-measure taxonomy of Section 2.1:
///
///  * **L-measures** (location, per series): mean, median, mode;
///  * **T-measures** (dispersion, per pair): covariance, dot product;
///  * **D-measures** (derived, per pair): a T-measure divided by a
///    normalizer — correlation (covariance / √(σ²_u σ²_v)), cosine
///    (dot / √(‖u‖²‖v‖²)), plus the dot-product-derived Jaccard and Dice
///    coefficients the paper lists as further supported measures.
///
/// This header also provides the *naive* (from scratch) evaluation of every
/// measure, which is the WN baseline.

#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/kernels.h"
#include "ts/data_matrix.h"

namespace affinity::core {

/// All statistical measures supported by the framework.
enum class Measure : int {
  // L-measures.
  kMean = 0,
  kMedian = 1,
  kMode = 2,
  // T-measures.
  kCovariance = 3,
  kDotProduct = 4,
  // D-measures.
  kCorrelation = 5,
  kCosine = 6,
  kJaccard = 7,
  kDice = 8,
};

/// Number of distinct measures (for iteration in tests/benches).
inline constexpr int kNumMeasures = 9;

/// The three measure classes of Section 2.1.
enum class MeasureClass { kLocation, kDispersion, kDerived };

/// Class of a measure (L / T / D).
MeasureClass ClassOf(Measure m);

/// Convenience predicates.
inline bool IsLocation(Measure m) { return ClassOf(m) == MeasureClass::kLocation; }
inline bool IsDispersion(Measure m) { return ClassOf(m) == MeasureClass::kDispersion; }
inline bool IsDerived(Measure m) { return ClassOf(m) == MeasureClass::kDerived; }

/// The T-measure a D-measure is derived from (correlation → covariance;
/// cosine/Jaccard/Dice → dot product). Identity for L/T measures.
Measure BaseMeasure(Measure m);

/// True when the D-measure has the separable form T/U with U > 0 a
/// per-pair product normalizer (correlation, cosine) — the form the SCAPE
/// D-pruning of §5.3 requires. Jaccard and Dice are rational in T and are
/// served by compute-then-filter instead.
bool HasSeparableNormalizer(Measure m);

/// Short lowercase name ("mean", "covariance", ...).
std::string_view MeasureName(Measure m);

/// All measures, in enum order.
std::vector<Measure> AllMeasures();

/// All L-measures / T-measures / D-measures.
std::vector<Measure> LocationMeasures();
std::vector<Measure> DispersionMeasures();
std::vector<Measure> DerivedMeasures();

// ---------------------------------------------------------------------------
// Naive (WN) evaluation.
// ---------------------------------------------------------------------------

/// L-measure of one series, from scratch. InvalidArgument for non-L measures.
StatusOr<double> NaiveLocationMeasure(Measure m, const double* x, std::size_t len);

/// The full co-moment set of an aligned pair — everything any T/D pair
/// measure needs, so a measure is computable from precomputed moments
/// without touching the raw columns (DESIGN.md §10). Populated either by
/// one fused blocked pass (`ComputePairMoments`) or assembled from hoisted
/// per-column marginals plus one cross dot (`PairMomentsFromMarginals`);
/// the two routes agree bitwise (kernel chain equality).
struct PairMoments {
  std::size_t m = 0;
  double sum_x = 0.0;
  double sumsq_x = 0.0;
  double sum_y = 0.0;
  double sumsq_y = 0.0;
  double dot_xy = 0.0;
};

/// One fused blocked pass over the pair (kernels::FusedPairMoments) at the
/// columns' block-grid anchor (the owning matrix's `anchor_row()`).
PairMoments ComputePairMoments(const double* x, const double* y, std::size_t len,
                               std::size_t anchor = 0);

/// Assembles the co-moments from hoisted column marginals and the cross
/// dot Σxy — the per-pair O(1) path of a marginal-hoisted sweep.
inline PairMoments PairMomentsFromMarginals(const kernels::Marginals& mx,
                                            const kernels::Marginals& my, double dot_xy,
                                            std::size_t len) {
  return PairMoments{len, mx.sum, mx.sumsq, my.sum, my.sumsq, dot_xy};
}

/// Any T/D pair measure from co-moments alone (population covariance
/// Σxy/m − μxμy, variances clamped at 0, degenerate normalizers → 0 per
/// DESIGN.md §6). InvalidArgument for L-measures.
StatusOr<double> PairMeasureFromMoments(Measure m, const PairMoments& pm);

/// T- or D-measure of a pair of series, from scratch: one fused blocked
/// pass (`ComputePairMoments`) + `PairMeasureFromMoments`. Bitwise equal
/// to every marginal-hoisted sweep and to the shard router's cross-pair
/// evaluation over the same columns.
StatusOr<double> NaivePairMeasure(Measure m, const double* x, const double* y, std::size_t len,
                                  std::size_t anchor = 0);

/// Pairwise-complete co-moments of a dirty pair (DESIGN.md §12): a row
/// contributes only where both validity masks are non-zero (either mask
/// may be null = fully valid), and `m` is set to the contributing-row
/// count so moment-based measures divide by the pairwise-complete sample
/// size. Full masks route through the dense fused kernel, bit for bit.
PairMoments ComputePairMomentsMasked(const double* x, const double* y,
                                     const std::uint8_t* mask_x, const std::uint8_t* mask_y,
                                     std::size_t len, std::size_t anchor = 0);

/// T- or D-measure of a dirty pair from its pairwise-complete moments.
/// Zero complete rows degenerate to 0 (the DESIGN.md §6 convention for
/// vanishing normalizers). InvalidArgument for L-measures.
StatusOr<double> NaivePairMeasureMasked(Measure m, const double* x, const double* y,
                                        const std::uint8_t* mask_x, const std::uint8_t* mask_y,
                                        std::size_t len, std::size_t anchor = 0);

/// The seed's sequential multi-scan evaluation (centered covariance, one
/// full scan per dot product) — kept as the numeric test oracle the
/// blocked kernels are verified against (tests/kernels_test.cc;
/// tolerance documented in DESIGN.md §10). Not used on any query path.
StatusOr<double> NaivePairMeasureScalar(Measure m, const double* x, const double* y,
                                        std::size_t len);

/// The normalizer U of a separable D-measure (Eq. 8), from scratch.
/// InvalidArgument unless HasSeparableNormalizer(m).
StatusOr<double> NaiveNormalizer(Measure m, const double* x, const double* y, std::size_t len,
                                 std::size_t anchor = 0);

}  // namespace affinity::core

#endif  // AFFINITY_CORE_MEASURES_H_
