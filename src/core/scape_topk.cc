// Top-k queries over the SCAPE index (declaration in scape.h).
//
// The key observation mirrors §5: within one pivot tree the entries are
// sorted by the scalar projection ξ, and
//
//   * T-measures:  value = ‖α‖·ξ           → tree order IS value order;
//   * D-measures:  value = ‖α‖·ξ / U_e     → tree order bounds value order,
//     because U_e ∈ [Umin, Umax]:  for ξ ≥ 0, value ≤ ‖α‖·ξ/Umin; for
//     ξ < 0, value ≤ ‖α‖·ξ/Umax (and symmetrically for lower bounds).
//
// So each (pivot, tree) is a stream whose frontier carries an upper bound
// on everything it has not yet produced — exactly the setting of Fagin's
// threshold algorithm. We pop the stream with the best bound, verify its
// frontier entry with the stored exact normalizer, and stop when the k-th
// best verified value dominates every remaining bound.

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "core/scape.h"

namespace affinity::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A candidate kept in the working heap (value already exact).
struct Candidate {
  double value;
  ScapeTopKEntry entry;
};

/// Orders the working heap so the *worst* kept candidate is on top
/// (min-heap in the transformed "bigger is better" space).
struct WorseCandidate {
  bool operator()(const Candidate& a, const Candidate& b) const { return a.value > b.value; }
};

/// A stream over one pivot tree (plus its degenerate side list).
///
/// All values are transformed so that "larger is better" regardless of the
/// query direction: for `largest` queries the transform is the identity and
/// streams walk trees in descending ξ; for `smallest` queries values are
/// negated and streams walk ascending ξ.
class Stream {
 public:
  virtual ~Stream() = default;
  /// Upper bound (in transformed space) on every entry this stream has not
  /// yet produced; -inf when exhausted.
  virtual double Bound() const = 0;
  /// Produces the frontier entry (exact transformed value) and advances.
  virtual Candidate Take() = 0;
  virtual bool Exhausted() const = 0;
};

/// Orders the stream heap so the best bound is popped first.
struct WorseBound {
  bool operator()(const Stream* a, const Stream* b) const { return a->Bound() < b->Bound(); }
};

}  // namespace

StatusOr<ScapeTopKResult> ScapeIndex::TopK(Measure measure, std::size_t k, bool largest) const {
  if (k == 0) return ScapeTopKResult{};
  const int loc_family = LocationFamilyIndex(measure);
  const int pair_family = PairFamilyIndex(measure);
  if (loc_family < 0 && pair_family < 0) {
    return Status::Unimplemented(std::string(MeasureName(measure)) +
                                 " is not SCAPE-indexable (no separable normalizer)");
  }
  const bool derived = IsDerived(measure);
  const double sign = largest ? 1.0 : -1.0;

  // --- Stream implementations (local classes capture the query context). --

  /// Pair-tree stream: walks the B-tree best-key-first.
  class PairTreeStream final : public Stream {
   public:
    PairTreeStream(const PairTree* pt, bool largest, bool derived, double sign)
        : pt_(pt), largest_(largest), derived_(derived), sign_(sign) {
      if (largest_) {
        rit_ = pt_->tree.rbegin();
      } else {
        fit_ = pt_->tree.begin();
      }
    }

    bool Exhausted() const override {
      return largest_ ? rit_ == pt_->tree.rend() : fit_ == pt_->tree.end();
    }

    double Bound() const override {
      if (Exhausted()) return -kInf;
      const double xi = largest_ ? rit_.key() : fit_.key();
      if (!derived_) return sign_ * pt_->norm * xi;
      // Best possible transformed value of any remaining entry.
      const double scaled = sign_ * pt_->norm * xi;
      return scaled >= 0 ? scaled / pt_->u_min : scaled / pt_->u_max;
    }

    Candidate Take() override {
      const SeqEntry& s = largest_ ? rit_.value() : fit_.value();
      const double xi = largest_ ? rit_.key() : fit_.key();
      Candidate c;
      c.entry.pair = s.e;
      const double raw = derived_ ? pt_->norm * xi / s.u : pt_->norm * xi;
      c.entry.value = raw;
      c.value = sign_ * raw;
      if (largest_) {
        ++rit_;
      } else {
        ++fit_;
      }
      return c;
    }

   private:
    const PairTree* pt_;
    bool largest_;
    bool derived_;
    double sign_;
    btree::BPlusTree<SeqEntry>::ConstReverseIterator rit_;
    btree::BPlusTree<SeqEntry>::ConstIterator fit_;
  };

  /// Degenerate side-list stream: values pre-computed and sorted.
  class VectorStream final : public Stream {
   public:
    VectorStream(std::vector<Candidate> sorted_desc) : items_(std::move(sorted_desc)) {}
    bool Exhausted() const override { return idx_ >= items_.size(); }
    double Bound() const override { return Exhausted() ? -kInf : items_[idx_].value; }
    Candidate Take() override { return items_[idx_++]; }

   private:
    std::vector<Candidate> items_;
    std::size_t idx_ = 0;
  };

  /// Location-tree stream (always exact).
  class LocTreeStream final : public Stream {
   public:
    LocTreeStream(const LocTree* lt, bool largest, double sign)
        : lt_(lt), largest_(largest), sign_(sign) {
      if (largest_) {
        rit_ = lt_->tree.rbegin();
      } else {
        fit_ = lt_->tree.begin();
      }
    }
    bool Exhausted() const override {
      return largest_ ? rit_ == lt_->tree.rend() : fit_ == lt_->tree.end();
    }
    double Bound() const override {
      if (Exhausted()) return -kInf;
      return sign_ * lt_->norm * (largest_ ? rit_.key() : fit_.key());
    }
    Candidate Take() override {
      Candidate c;
      c.entry.series = largest_ ? rit_.value() : fit_.value();
      const double raw = lt_->norm * (largest_ ? rit_.key() : fit_.key());
      c.entry.value = raw;
      c.value = sign_ * raw;
      if (largest_) {
        ++rit_;
      } else {
        ++fit_;
      }
      return c;
    }

   private:
    const LocTree* lt_;
    bool largest_;
    double sign_;
    btree::BPlusTree<ts::SeriesId>::ConstReverseIterator rit_;
    btree::BPlusTree<ts::SeriesId>::ConstIterator fit_;
  };

  // --- Assemble the streams. ------------------------------------------------

  std::vector<std::unique_ptr<Stream>> streams;
  if (loc_family >= 0) {
    for (const LocPivotNode& node : loc_pivots_) {
      const LocTree& lt = node.trees[static_cast<std::size_t>(loc_family)];
      if (lt.tree.size() > 0) {
        streams.push_back(std::make_unique<LocTreeStream>(&lt, largest, sign));
      }
    }
  } else {
    for (const PairPivotNode& node : pair_pivots_) {
      const PairTree& pt = node.trees[static_cast<std::size_t>(pair_family)];
      if (pt.norm > 0.0 && pt.tree.size() > 0) {
        streams.push_back(std::make_unique<PairTreeStream>(&pt, largest, derived, sign));
      }
      if (!pt.degenerate.empty()) {
        std::vector<Candidate> items;
        items.reserve(pt.degenerate.size());
        for (const SeqEntry& s : pt.degenerate) {
          // Degenerate pivot (norm 0) or zero normalizer: T-value ‖α‖ξ,
          // D-value defined 0.
          const double raw = derived ? 0.0 : pt.norm * s.xi;
          Candidate c;
          c.entry.pair = s.e;
          c.entry.value = raw;
          c.value = sign * raw;
          items.push_back(c);
        }
        std::sort(items.begin(), items.end(),
                  [](const Candidate& a, const Candidate& b) { return a.value > b.value; });
        streams.push_back(std::make_unique<VectorStream>(std::move(items)));
      }
    }
  }

  // --- Threshold-algorithm main loop. ---------------------------------------

  std::priority_queue<Stream*, std::vector<Stream*>, WorseBound> frontier;
  for (const auto& s : streams) {
    if (!s->Exhausted()) frontier.push(s.get());
  }

  std::priority_queue<Candidate, std::vector<Candidate>, WorseCandidate> best;  // worst on top
  ScapeTopKResult result;
  while (!frontier.empty()) {
    Stream* s = frontier.top();
    const double bound = s->Bound();
    if (best.size() == k && best.top().value >= bound) break;  // TA stop condition
    frontier.pop();
    best.push(s->Take());
    ++result.examined;
    if (best.size() > k) best.pop();
    if (!s->Exhausted()) frontier.push(s);
  }

  result.entries.resize(best.size());
  for (std::size_t i = best.size(); i-- > 0;) {
    result.entries[i] = best.top().entry;
    best.pop();
  }
  return result;
}

ScapeTopKResult MergeTopK(const std::vector<ScapeTopKResult>& runs, std::size_t k,
                          bool largest) {
  // "a better than b" in the query direction, with a deterministic
  // (series, pair) tiebreak so merged order never depends on run layout.
  const auto better = [largest](const ScapeTopKEntry& a, const ScapeTopKEntry& b) {
    if (a.value != b.value) return largest ? a.value > b.value : a.value < b.value;
    if (a.series != b.series) return a.series < b.series;
    return a.pair < b.pair;
  };

  // Frontier heap over run heads: each run is already best-first, so the
  // globally best unmerged entry is always some run's head.
  struct Head {
    std::size_t run;
    std::size_t pos;
  };
  ScapeTopKResult out;
  const auto worse_head = [&](const Head& a, const Head& b) {
    return better(runs[b.run].entries[b.pos], runs[a.run].entries[a.pos]);
  };
  std::priority_queue<Head, std::vector<Head>, decltype(worse_head)> frontier(worse_head);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    out.examined += runs[r].examined;
    if (!runs[r].entries.empty()) frontier.push(Head{r, 0});
  }
  out.entries.reserve(k);
  while (out.entries.size() < k && !frontier.empty()) {
    const Head head = frontier.top();
    frontier.pop();
    out.entries.push_back(runs[head.run].entries[head.pos]);
    if (head.pos + 1 < runs[head.run].entries.size()) {
      frontier.push(Head{head.run, head.pos + 1});
    }
  }
  return out;
}

}  // namespace affinity::core
