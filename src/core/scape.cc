#include "core/scape.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"

namespace affinity::core {

namespace {

/// αq of Table 2 (corrected dot-product row; see DESIGN.md) for the
/// covariance family. The common-column side decides which Σ entries feed
/// the key.
void CovarianceAlpha(const PairMatrixMeasures& pm, bool series_first, double alpha[3]) {
  if (series_first) {
    alpha[0] = pm.cov11;
    alpha[1] = pm.cov12;
  } else {
    alpha[0] = pm.cov12;
    alpha[1] = pm.cov22;
  }
  alpha[2] = 0.0;
}

/// αq for the dot-product family: Π12(Se) = Π11·a + Π12·a' + h·b on the
/// series-first side, mirrored otherwise.
void DotProductAlpha(const PairMatrixMeasures& pm, bool series_first, double alpha[3]) {
  if (series_first) {
    alpha[0] = pm.dot11;
    alpha[1] = pm.dot12;
    alpha[2] = pm.h1;
  } else {
    alpha[0] = pm.dot12;
    alpha[1] = pm.dot22;
    alpha[2] = pm.h2;
  }
}

double Norm3(const double a[3]) {
  return std::sqrt(a[0] * a[0] + a[1] * a[1] + a[2] * a[2]);
}

double Dot3(const double a[3], const double b[3]) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

}  // namespace

int ScapeIndex::PairFamilyIndex(Measure m) {
  switch (m) {
    case Measure::kCovariance:
    case Measure::kCorrelation:
      return 0;
    case Measure::kDotProduct:
    case Measure::kCosine:
      return 1;
    default:
      return -1;
  }
}

int ScapeIndex::LocationFamilyIndex(Measure m) {
  switch (m) {
    case Measure::kMean:
      return 0;
    case Measure::kMedian:
      return 1;
    case Measure::kMode:
      return 2;
    default:
      return -1;
  }
}

StatusOr<ScapeIndex> ScapeIndex::Build(const AffinityModel& model, const ScapeOptions& options,
                                       const ExecContext& exec) {
  Stopwatch watch;
  ScapeIndex index;

  // ---- Pair-level pivot nodes (T/D-measures). -----------------------------
  // Phase 1 (sequential): discover pivots, fix their αq keys, and group
  // the relationships per pivot. The per-pivot group order is the model's
  // iteration order — independent of the execution context.
  std::unordered_map<std::uint64_t, std::size_t> pivot_slot;
  pivot_slot.reserve(model.pivot_count());
  index.pair_pivots_.reserve(model.pivot_count());
  std::vector<std::vector<std::pair<ts::SequencePair, const AffineRecord*>>> grouped;
  grouped.reserve(model.pivot_count());

  model.ForEachRelationship([&](const ts::SequencePair& e, const AffineRecord& rec) {
    const auto [it, inserted] = pivot_slot.try_emplace(rec.pivot.Key(), index.pair_pivots_.size());
    if (inserted) {
      index.pair_pivots_.emplace_back(options.btree_fanout);
      grouped.emplace_back();
      PairPivotNode& node = index.pair_pivots_.back();
      node.pivot = rec.pivot;
      const PairMatrixMeasures* pm = model.FindPivotMeasures(rec.pivot);
      AFFINITY_CHECK(pm != nullptr);
      CovarianceAlpha(*pm, rec.pivot.series_first, node.trees[0].alpha);
      DotProductAlpha(*pm, rec.pivot.series_first, node.trees[1].alpha);
      node.trees[0].norm = Norm3(node.trees[0].alpha);
      node.trees[1].norm = Norm3(node.trees[1].alpha);
    }
    grouped[it->second].emplace_back(e, &rec);
    index.pair_pivots_[it->second].members.push_back(e);
    index.pair_pivots_[it->second].member_recs.push_back(&rec);
    ++index.pair_entries_;
  });

  // Phase 2 (parallel over pivots): every pivot's trees are private to
  // its chunk item, so construction fans out with no synchronization and
  // a fixed per-tree insertion order.
  const std::size_t pivot_count = index.pair_pivots_.size();
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec, pivot_count, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) -> Status {
    for (std::size_t slot = lo; slot < hi; ++slot) {
      PairPivotNode& node = index.pair_pivots_[slot];
      for (const auto& [e, rec] : grouped[slot]) {
        double beta[3];
        rec->Beta(beta);
        const Measure kNormalizerOf[2] = {Measure::kCorrelation, Measure::kCosine};
        for (int family = 0; family < 2; ++family) {
          PairTree& pt = node.trees[static_cast<std::size_t>(family)];
          auto u_or = model.PairNormalizer(kNormalizerOf[family], e);
          if (!u_or.ok()) return u_or.status();
          const double u = *u_or;
          const double xi = pt.norm > 0.0 ? Dot3(pt.alpha, beta) / pt.norm : 0.0;
          SeqEntry entry{e, u, xi};
          const bool in_tree = pt.norm > 0.0 && u > 0.0;
          if (in_tree) {
            // Regular entry: keyed in the B-tree; contributes normalizer bounds.
            pt.u_min = std::min(pt.u_min, u);
            pt.u_max = std::max(pt.u_max, u);
            pt.tree.Insert(xi, entry);
          } else {
            // Degenerate pivot (‖α‖ = 0 → T-value ≡ 0) or zero normalizer
            // (constant series → D-value ≡ 0): evaluated from the side list.
            pt.degenerate.push_back(entry);
          }
          pt.member_keys.push_back(xi);
          pt.member_u.push_back(u);
          pt.member_in_tree.push_back(in_tree ? 1 : 0);
        }
      }
    }
    return Status::OK();
  }));

  // ---- Per-cluster pivot nodes (L-measures). -------------------------------
  const std::size_t k = model.clustering().k();
  const std::size_t n = model.data().n();
  index.loc_pivots_.reserve(k);
  std::vector<std::vector<ts::SeriesId>> members(k);
  for (std::size_t l = 0; l < k; ++l) {
    index.loc_pivots_.emplace_back(options.btree_fanout);
    LocPivotNode& node = index.loc_pivots_.back();
    const Measure kLoc[3] = {Measure::kMean, Measure::kMedian, Measure::kMode};
    for (int f = 0; f < 3; ++f) {
      AFFINITY_ASSIGN_OR_RETURN(double center_value,
                                model.CenterLocation(kLoc[f], static_cast<int>(l)));
      node.trees[f].alpha[0] = center_value;
      node.trees[f].alpha[1] = 1.0;
      node.trees[f].norm =
          std::sqrt(center_value * center_value + 1.0);  // ≥ 1, never degenerate
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    members[static_cast<std::size_t>(model.clustering().assignment[v])].push_back(
        static_cast<ts::SeriesId>(v));
    ++index.series_entries_;
  }
  ParallelChunks(exec, k, [&](std::size_t /*chunk*/, std::size_t lo, std::size_t hi) {
    for (std::size_t l = lo; l < hi; ++l) {
      LocPivotNode& node = index.loc_pivots_[l];
      node.members = members[l];
      for (const ts::SeriesId v : node.members) {
        const SeriesAffine& sa = model.series_affine(v);
        for (int f = 0; f < 3; ++f) {
          LocTree& lt = node.trees[f];
          const double xi = (lt.alpha[0] * sa.gain + lt.alpha[1] * sa.offset) / lt.norm;
          lt.tree.Insert(xi, v);
          lt.member_keys.push_back(xi);
        }
      }
    }
  });

  index.build_seconds_ = watch.ElapsedSeconds();
  return index;
}

StatusOr<std::size_t> ScapeIndex::Refresh(const AffinityModel& model, const ExecContext& exec,
                                          std::size_t* rekeys_skipped, ScapeDeltaLog* delta) {
  if (delta != nullptr) delta->Reset(pair_pivots_.size(), loc_pivots_.size());
  // ---- Pair-level pivot nodes. ---------------------------------------------
  // Per-pivot work is private to its chunk item (including its rows of the
  // delta log); move and skip counts merge in chunk-index order so the
  // totals are thread-count invariant.
  std::vector<std::size_t> moves(ExecNumChunks(pair_pivots_.size()), 0);
  std::vector<std::size_t> skips(ExecNumChunks(pair_pivots_.size()), 0);
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec, pair_pivots_.size(),
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) -> Status {
        std::size_t ops = 0;
        std::size_t skipped = 0;
        for (std::size_t slot = lo; slot < hi; ++slot) {
          PairPivotNode& node = pair_pivots_[slot];
          const PairMatrixMeasures* pm = model.FindPivotMeasures(node.pivot);
          if (pm == nullptr) {
            return Status::FailedPrecondition(
                "SCAPE refresh: pivot structure changed since build");
          }
          CovarianceAlpha(*pm, node.pivot.series_first, node.trees[0].alpha);
          DotProductAlpha(*pm, node.pivot.series_first, node.trees[1].alpha);
          node.trees[0].norm = Norm3(node.trees[0].alpha);
          node.trees[1].norm = Norm3(node.trees[1].alpha);
          for (int family = 0; family < 2; ++family) {
            PairTree& pt = node.trees[static_cast<std::size_t>(family)];
            pt.u_min = std::numeric_limits<double>::infinity();
            pt.u_max = 0.0;
            // The side list regenerates in member order (its scan order is
            // part of the query-result order contract).
            pt.degenerate.clear();
          }
          for (std::size_t i = 0; i < node.members.size(); ++i) {
            const ts::SequencePair e = node.members[i];
            const AffineRecord* rec = node.member_recs[i];
            double beta[3];
            rec->Beta(beta);
            // Per-family normalizers, inlined from PairNormalizer (same
            // expressions, so the refreshed keys match a rebuilt index
            // bit for bit): correlation for the covariance family, cosine
            // for the dot-product family.
            const SeriesStats& su = model.series_stats(e.u);
            const SeriesStats& sv = model.series_stats(e.v);
            const double normalizer[2] = {std::sqrt(su.variance * sv.variance),
                                          std::sqrt(su.sumsq * sv.sumsq)};
            for (int family = 0; family < 2; ++family) {
              PairTree& pt = node.trees[static_cast<std::size_t>(family)];
              ScapeDeltaRange* dirty =
                  delta != nullptr ? &delta->pair[slot][static_cast<std::size_t>(family)]
                                   : nullptr;
              const double u = normalizer[family];
              const double xi = pt.norm > 0.0 ? Dot3(pt.alpha, beta) / pt.norm : 0.0;
              const bool in_tree = pt.norm > 0.0 && u > 0.0;
              const bool was_in_tree = pt.member_in_tree[i] != 0;
              const double old_key = pt.member_keys[i];
              const auto same_pair = [&](const SeqEntry& s) { return s.e == e; };
              if (in_tree) {
                pt.u_min = std::min(pt.u_min, u);
                pt.u_max = std::max(pt.u_max, u);
                if (was_in_tree && xi == old_key && u == pt.member_u[i]) {
                  // Sparse-movement fast path: key and cached normalizer are
                  // bitwise-unchanged, so the stored entry is already exact —
                  // skip the erase + insert entirely.
                  ++skipped;
                } else if (was_in_tree) {
                  if (!pt.tree.ReKey(old_key, xi, same_pair, [&](SeqEntry& s) {
                        s.u = u;
                        s.xi = xi;
                      })) {
                    return Status::Internal("SCAPE refresh: entry missing from tree");
                  }
                  ++ops;
                  if (dirty != nullptr) dirty->Touch(old_key, xi);
                } else {
                  pt.tree.Insert(xi, SeqEntry{e, u, xi});
                  ++ops;
                  if (dirty != nullptr) dirty->Touch(xi, xi);
                }
              } else {
                if (was_in_tree) {
                  if (!pt.tree.Erase(old_key, same_pair)) {
                    return Status::Internal("SCAPE refresh: entry missing from tree");
                  }
                  ++ops;
                  if (dirty != nullptr) dirty->Touch(old_key, old_key);
                }
                pt.degenerate.push_back(SeqEntry{e, u, xi});
              }
              pt.member_keys[i] = xi;
              pt.member_u[i] = u;
              pt.member_in_tree[i] = in_tree ? 1 : 0;
            }
          }
        }
        moves[chunk] = ops;
        skips[chunk] = skipped;
        return Status::OK();
      }));

  // ---- Per-cluster pivot nodes (L-measures). -------------------------------
  std::vector<std::size_t> loc_moves(ExecNumChunks(loc_pivots_.size()), 0);
  std::vector<std::size_t> loc_skips(ExecNumChunks(loc_pivots_.size()), 0);
  AFFINITY_RETURN_IF_ERROR(TryParallelChunks(
      exec, loc_pivots_.size(),
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) -> Status {
        std::size_t ops = 0;
        std::size_t skipped = 0;
        for (std::size_t l = lo; l < hi; ++l) {
          LocPivotNode& node = loc_pivots_[l];
          const Measure kLoc[3] = {Measure::kMean, Measure::kMedian, Measure::kMode};
          for (int f = 0; f < 3; ++f) {
            auto center_or = model.CenterLocation(kLoc[f], static_cast<int>(l));
            if (!center_or.ok()) return center_or.status();
            LocTree& lt = node.trees[f];
            lt.alpha[0] = *center_or;
            lt.alpha[1] = 1.0;
            lt.norm = std::sqrt(*center_or * *center_or + 1.0);
          }
          for (std::size_t i = 0; i < node.members.size(); ++i) {
            const ts::SeriesId v = node.members[i];
            const SeriesAffine& sa = model.series_affine(v);
            for (int f = 0; f < 3; ++f) {
              LocTree& lt = node.trees[f];
              const double xi = (lt.alpha[0] * sa.gain + lt.alpha[1] * sa.offset) / lt.norm;
              if (xi == lt.member_keys[i]) {
                // Sparse-movement fast path (see the pair loop above).
                ++skipped;
                continue;
              }
              if (!lt.tree.ReKey(lt.member_keys[i], xi,
                                 [&](const ts::SeriesId& s) { return s == v; })) {
                return Status::Internal("SCAPE refresh: series entry missing from tree");
              }
              if (delta != nullptr) {
                delta->loc[l][static_cast<std::size_t>(f)].Touch(lt.member_keys[i], xi);
              }
              lt.member_keys[i] = xi;
              ++ops;
            }
          }
        }
        loc_moves[chunk] = ops;
        loc_skips[chunk] = skipped;
        return Status::OK();
      }));

  std::size_t total = 0;
  for (std::size_t c : moves) total += c;
  for (std::size_t c : loc_moves) total += c;
  if (rekeys_skipped != nullptr) {
    std::size_t skipped_total = 0;
    for (std::size_t c : skips) skipped_total += c;
    for (std::size_t c : loc_skips) skipped_total += c;
    *rekeys_skipped = skipped_total;
  }
  return total;
}

StatusOr<ScapeQueryResult> ScapeIndex::MeasureThreshold(Measure measure, double tau,
                                                        bool greater) const {
  const int loc = LocationFamilyIndex(measure);
  if (loc >= 0) return LocationThreshold(loc, tau, greater);
  if (PairFamilyIndex(measure) >= 0) return PairThreshold(measure, tau, greater);
  return Status::Unimplemented(std::string(MeasureName(measure)) +
                               " is not SCAPE-indexable (no separable normalizer)");
}

StatusOr<ScapeQueryResult> ScapeIndex::MeasureRange(Measure measure, double lo, double hi) const {
  if (lo > hi) return Status::InvalidArgument("MER requires lo <= hi");
  const int loc = LocationFamilyIndex(measure);
  if (loc >= 0) return LocationRange(loc, lo, hi);
  if (PairFamilyIndex(measure) >= 0) return PairRange(measure, lo, hi);
  return Status::Unimplemented(std::string(MeasureName(measure)) +
                               " is not SCAPE-indexable (no separable normalizer)");
}

StatusOr<ScapeQueryResult> ScapeIndex::LocationThreshold(int family, double tau,
                                                         bool greater) const {
  ScapeQueryResult out;
  for (const LocPivotNode& node : loc_pivots_) {
    const LocTree& lt = node.trees[static_cast<std::size_t>(family)];
    const double tau_prime = tau / lt.norm;
    if (greater) {
      lt.tree.ScanGreaterThan(tau_prime, [&](double, const ts::SeriesId& v) {
        out.series.push_back(v);
        ++out.prune.accepted_unverified;
      });
    } else {
      lt.tree.ScanLessThan(tau_prime, [&](double, const ts::SeriesId& v) {
        out.series.push_back(v);
        ++out.prune.accepted_unverified;
      });
    }
  }
  return out;
}

StatusOr<ScapeQueryResult> ScapeIndex::LocationRange(int family, double lo, double hi) const {
  ScapeQueryResult out;
  for (const LocPivotNode& node : loc_pivots_) {
    const LocTree& lt = node.trees[static_cast<std::size_t>(family)];
    lt.tree.ScanOpenRange(lo / lt.norm, hi / lt.norm, [&](double, const ts::SeriesId& v) {
      out.series.push_back(v);
      ++out.prune.accepted_unverified;
    });
  }
  return out;
}

StatusOr<ScapeQueryResult> ScapeIndex::PairThreshold(Measure measure, double tau,
                                                     bool greater) const {
  const int family = PairFamilyIndex(measure);
  const bool derived = IsDerived(measure);
  ScapeQueryResult out;

  for (const PairPivotNode& node : pair_pivots_) {
    const PairTree& pt = node.trees[static_cast<std::size_t>(family)];

    if (!derived) {
      // T-measure: value = ‖α‖·ξ — one threshold conversion, one scan.
      if (pt.norm > 0.0) {
        const double tau_prime = tau / pt.norm;
        if (greater) {
          pt.tree.ScanGreaterThan(tau_prime, [&](double, const SeqEntry& s) {
            out.pairs.push_back(s.e);
            ++out.prune.accepted_unverified;
          });
        } else {
          pt.tree.ScanLessThan(tau_prime, [&](double, const SeqEntry& s) {
            out.pairs.push_back(s.e);
            ++out.prune.accepted_unverified;
          });
        }
      } else {
        // Degenerate pivot: every entry of this pivot has value 0 and sits
        // in the side list (the tree is empty).
        const bool zero_in = greater ? 0.0 > tau : 0.0 < tau;
        if (zero_in) {
          for (const SeqEntry& s : pt.degenerate) out.pairs.push_back(s.e);
        }
        out.prune.scanned_degenerate += pt.degenerate.size();
        continue;
      }
      // Zero-normalizer entries still have a T-value ‖α‖·ξ (their ξ is
      // stored); evaluate them directly.
      for (const SeqEntry& s : pt.degenerate) {
        const double value = pt.norm * s.xi;
        if (greater ? value > tau : value < tau) out.pairs.push_back(s.e);
      }
      out.prune.scanned_degenerate += pt.degenerate.size();
      continue;
    }

    // D-measure: value = ‖α‖·ξ / U, U ∈ [u_min, u_max] per pivot (§5.3).
    if (pt.norm > 0.0 && pt.tree.size() > 0) {
      const double b1 = tau * pt.u_min;
      const double b2 = tau * pt.u_max;
      const double lo_key = std::min(b1, b2) / pt.norm;
      const double hi_key = std::max(b1, b2) / pt.norm;
      if (greater) {
        // Accept ξ > hi_key; verify lo_key <= ξ <= hi_key; reject below lo_key.
        for (auto it = pt.tree.LowerBound(lo_key); it != pt.tree.end(); ++it) {
          const SeqEntry& s = it.value();
          if (it.key() > hi_key) {
            out.pairs.push_back(s.e);
            ++out.prune.accepted_unverified;
          } else {
            const double value = pt.norm * it.key() / s.u;
            ++out.prune.verified;
            if (value > tau) out.pairs.push_back(s.e);
          }
        }
      } else {
        // Accept ξ < lo_key; verify lo_key <= ξ <= hi_key; reject above hi_key.
        for (auto it = pt.tree.begin(); it != pt.tree.end() && it.key() <= hi_key; ++it) {
          const SeqEntry& s = it.value();
          if (it.key() < lo_key) {
            out.pairs.push_back(s.e);
            ++out.prune.accepted_unverified;
          } else {
            const double value = pt.norm * it.key() / s.u;
            ++out.prune.verified;
            if (value < tau) out.pairs.push_back(s.e);
          }
        }
      }
    }
    // Entries with U == 0 (or a degenerate pivot): D-value is defined as 0.
    const bool zero_in = greater ? 0.0 > tau : 0.0 < tau;
    if (zero_in) {
      for (const SeqEntry& s : pt.degenerate) out.pairs.push_back(s.e);
    }
    out.prune.scanned_degenerate += pt.degenerate.size();
  }
  return out;
}

StatusOr<ScapeQueryResult> ScapeIndex::PairRange(Measure measure, double lo, double hi) const {
  const int family = PairFamilyIndex(measure);
  const bool derived = IsDerived(measure);
  ScapeQueryResult out;

  for (const PairPivotNode& node : pair_pivots_) {
    const PairTree& pt = node.trees[static_cast<std::size_t>(family)];

    if (!derived) {
      if (pt.norm > 0.0) {
        pt.tree.ScanOpenRange(lo / pt.norm, hi / pt.norm, [&](double, const SeqEntry& s) {
          out.pairs.push_back(s.e);
          ++out.prune.accepted_unverified;
        });
        for (const SeqEntry& s : pt.degenerate) {
          const double value = pt.norm * s.xi;
          if (lo < value && value < hi) out.pairs.push_back(s.e);
        }
      } else if (lo < 0.0 && 0.0 < hi) {
        for (const SeqEntry& s : pt.degenerate) out.pairs.push_back(s.e);
      }
      out.prune.scanned_degenerate += pt.degenerate.size();
      continue;
    }

    // D-measure MER with the four modified thresholds of §5.3.
    if (pt.norm > 0.0 && pt.tree.size() > 0) {
      const double l1 = lo * pt.u_min, l2 = lo * pt.u_max;
      const double h1 = hi * pt.u_min, h2 = hi * pt.u_max;
      const double reject_below = std::min(l1, l2) / pt.norm;   // ξ ≤ this → out
      const double accept_lo = std::max(l1, l2) / pt.norm;      // case-I accept band
      const double accept_hi = std::min(h1, h2) / pt.norm;
      const double reject_above = std::max(h1, h2) / pt.norm;   // ξ ≥ this → out
      for (auto it = pt.tree.UpperBound(reject_below);
           it != pt.tree.end() && it.key() < reject_above; ++it) {
        const SeqEntry& s = it.value();
        if (it.key() > accept_lo && it.key() < accept_hi) {
          out.pairs.push_back(s.e);
          ++out.prune.accepted_unverified;
        } else {
          const double value = pt.norm * it.key() / s.u;
          ++out.prune.verified;
          if (lo < value && value < hi) out.pairs.push_back(s.e);
        }
      }
    }
    if (lo < 0.0 && 0.0 < hi) {
      for (const SeqEntry& s : pt.degenerate) out.pairs.push_back(s.e);
    }
    out.prune.scanned_degenerate += pt.degenerate.size();
  }
  return out;
}

}  // namespace affinity::core
