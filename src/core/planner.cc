#include "core/planner.h"

#include <cmath>
#include <string>
#include <utility>

namespace affinity::core {

namespace {

/// Entities a full selection sweep touches: series for L, pairs otherwise.
double EntityCount(Measure measure, std::size_t n) {
  return IsLocation(measure) ? static_cast<double>(n)
                             : static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
}

constexpr double kLookupCost = 24.0;  ///< hash probe + propagation flops (WA)
constexpr double kTreeStep = 8.0;     ///< B-tree descent/emit per entry (SCAPE)
constexpr double kMomentEvalCost = 12.0;  ///< PairMeasureFromMoments on warm co-moments

}  // namespace

std::string_view QueryMethodName(QueryMethod method) {
  switch (method) {
    case QueryMethod::kNaive:
      return "WN";
    case QueryMethod::kAffine:
      return "WA";
    case QueryMethod::kDft:
      return "WF";
    case QueryMethod::kScape:
      return "SCAPE";
    case QueryMethod::kAuto:
      return "AUTO";
  }
  return "?";
}

void AnnotateSnapshotServed(PlanChoice* plan, std::uint64_t generation) {
  plan->rationale +=
      "; served from read-optimized snapshot (generation " + std::to_string(generation) + ")";
}

void AnnotateQualityFiltered(PlanChoice* plan, double min_quality, std::size_t excluded) {
  plan->rationale += "; quality filter min_quality=" + std::to_string(min_quality) +
                     " excluded " + std::to_string(excluded) + " candidate(s)";
}

double QueryPlanner::NaiveUnitCost(Measure measure) const {
  // Calibrated to the marginal-hoisted blocked kernels (DESIGN.md §10):
  // every pair measure costs one fused Σxy pass (2m flops); the hoisted
  // per-column marginals (amortized ~2m/n per pair over a full sweep) and
  // the O(1) moment assembly are folded into the constants, which keeps
  // the seed ordering dot < covariance < correlation the crossover tests
  // rely on.
  const double m = static_cast<double>(m_);
  switch (measure) {
    case Measure::kMean:
      return m;
    case Measure::kMedian:
      return 3.0 * m;  // selection network constant
    case Measure::kMode:
      return m * m;  // O(m²) density estimator (see stats.h)
    case Measure::kCovariance:
      return 2.5 * m;  // fused dot + mean assembly from hoisted marginals
    case Measure::kDotProduct:
      return 2.0 * m;  // the bare fused dot
    case Measure::kCorrelation:
      return 3.0 * m;  // + variance normalizer from hoisted marginals
    case Measure::kCosine:
    case Measure::kJaccard:
    case Measure::kDice:
      return 3.0 * m;  // + energy normalizer from hoisted marginals
  }
  return m;
}

PlanChoice QueryPlanner::Shardify(PlanChoice choice, Measure measure) const {
  if (topology_.shards <= 1 || IsLocation(measure)) return choice;
  // Pairs spanning two shards are outside every per-shard model/index; the
  // router computes them from scratch over the aligned shard snapshots,
  // then k-way-merges the per-shard and cross-shard runs. Pairs on the
  // router's warm co-moment watch-list skip the raw sweep entirely — they
  // cost one O(1) moment evaluation instead of a fused column pass.
  const std::size_t cached = topology_.cached_cross_pairs < topology_.cross_pairs
                                 ? topology_.cached_cross_pairs
                                 : topology_.cross_pairs;
  const std::size_t swept = topology_.cross_pairs - cached;
  const double cross = static_cast<double>(swept) * NaiveUnitCost(measure) +
                       static_cast<double>(cached) * kMomentEvalCost;
  choice.estimated_cost += cross;
  choice.rationale += "; scatter-gather over " + std::to_string(topology_.shards) +
                      " shards (+" + std::to_string(topology_.cross_pairs) +
                      " cross-shard pairs via WN, k-way merge)";
  if (cached > 0) {
    choice.rationale +=
        "; " + std::to_string(cached) + " cross pairs served from warm co-moments";
  }
  return choice;
}

PlanChoice QueryPlanner::PlanMec(Measure measure, std::size_t ids) const {
  const double entities = IsLocation(measure)
                              ? static_cast<double>(ids)
                              : static_cast<double>(ids) * static_cast<double>(ids + 1) / 2.0;
  const double wn_cost = entities * NaiveUnitCost(measure);
  if (caps_.has_model) {
    return Shardify(PlanChoice{QueryMethod::kAffine, entities * kLookupCost,
                               "WA: O(1) propagation per requested entity (model available)"},
                    measure);
  }
  return Shardify(PlanChoice{QueryMethod::kNaive, wn_cost, "WN: no model built"}, measure);
}

PlanChoice QueryPlanner::PlanSelection(Measure measure, double selectivity, bool top_k,
                                       std::size_t k) const {
  const double entities = EntityCount(measure, n_);
  const bool indexable =
      !IsDerived(measure) || HasSeparableNormalizer(measure);  // Jaccard/Dice are not

  if (caps_.has_scape && indexable) {
    const double emitted = top_k ? static_cast<double>(k) : selectivity * entities;
    // Scan cost: per-pivot descent (log of entries) + emitted entries; the
    // k·n upper bound on pivots is folded into the constant.
    const double descent = static_cast<double>(n_) * std::log2(2.0 + entities);
    PlanChoice choice{QueryMethod::kScape, descent + emitted * kTreeStep,
                      top_k ? "SCAPE: threshold-algorithm top-k over pivot trees"
                            : "SCAPE: key-range scan per pivot, no per-entity computation"};
    return Shardify(std::move(choice), measure);
  }
  if (caps_.has_model) {
    return Shardify(
        PlanChoice{QueryMethod::kAffine, entities * kLookupCost,
                   indexable ? "WA: model available but SCAPE not built"
                             : "WA: measure not SCAPE-indexable (no separable normalizer)"},
        measure);
  }
  // WF is never chosen automatically — its sketch truncation is a coarse
  // approximation; callers wanting it request kDft explicitly. The
  // rationale still reports its availability.
  const bool wf_applies = caps_.has_dft && measure == Measure::kCorrelation;
  return Shardify(
      PlanChoice{QueryMethod::kNaive, entities * NaiveUnitCost(measure),
                 wf_applies ? "WN: no model or index built (WF sketches available but "
                              "approximate; request WF explicitly)"
                            : "WN: no model or index built"},
      measure);
}

PlanChoice QueryPlanner::PlanMet(Measure measure, double selectivity) const {
  return PlanSelection(measure, selectivity, /*top_k=*/false, 0);
}

PlanChoice QueryPlanner::PlanMer(Measure measure, double selectivity) const {
  return PlanSelection(measure, selectivity, /*top_k=*/false, 0);
}

PlanChoice QueryPlanner::PlanTopK(Measure measure, std::size_t k) const {
  return PlanSelection(measure, 0.0, /*top_k=*/true, k);
}

}  // namespace affinity::core
