#ifndef AFFINITY_BTREE_BPLUS_TREE_H_
#define AFFINITY_BTREE_BPLUS_TREE_H_

/// \file bplus_tree.h
/// In-memory B+-tree keyed by double — the sorted-container substrate the
/// SCAPE index attaches to every pivot node (§5.1, Fig. 7).
///
/// Design points:
///  * duplicate keys are allowed (distinct sequence pairs can share a
///    scalar-projection key ξ);
///  * leaves are chained, so a threshold query is one descent plus a
///    linear leaf walk over exactly the result set;
///  * values are payloads (`V`), typically a sequence-node struct;
///  * entries can be erased (`Erase`) and moved (`ReKey` = erase + insert)
///    with classic underflow rebalancing — borrow from a sibling, else
///    merge, collapsing the root when it drops to one child — so the
///    incremental maintenance path (DESIGN.md §8) can slide scalar
///    projections inside a live index instead of rebuilding it.
///
/// The tree is single-threaded by design: the SCAPE index is built once
/// per dataset snapshot, queried read-only, and mutated only from the
/// (externally serialized) maintenance path.

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace affinity::btree {

/// B+-tree with double keys and value payloads of type V.
template <typename V>
class BPlusTree {
 private:
  struct Node {
    explicit Node(bool leaf) : is_leaf(leaf) {}
    virtual ~Node() = default;
    bool is_leaf;
  };

  struct LeafNode final : Node {
    LeafNode() : Node(true) {}
    std::vector<double> keys;
    std::vector<V> values;
    LeafNode* next = nullptr;  // non-owning leaf chain (ascending)
    LeafNode* prev = nullptr;  // non-owning leaf chain (descending)
  };

  struct InternalNode final : Node {
    InternalNode() : Node(false) {}
    // children.size() == keys.size() + 1; subtree children[i] holds keys in
    // [keys[i-1], keys[i]) with the usual boundary conventions.
    std::vector<double> keys;
    std::vector<std::unique_ptr<Node>> children;
  };

 public:
  /// Read-only iterator over (key, value) entries in key order.
  class ConstIterator {
   public:
    ConstIterator() = default;
    ConstIterator(const LeafNode* leaf, std::size_t idx) : leaf_(leaf), idx_(idx) {}

    /// Key of the current entry.
    double key() const { return leaf_->keys[idx_]; }
    /// Value of the current entry.
    const V& value() const { return leaf_->values[idx_]; }

    ConstIterator& operator++() {
      ++idx_;
      if (idx_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
      return *this;
    }

    bool operator==(const ConstIterator& o) const = default;
    /// True iff the iterator points at an entry.
    bool valid() const { return leaf_ != nullptr; }

   private:
    const LeafNode* leaf_ = nullptr;
    std::size_t idx_ = 0;
  };

  /// Read-only iterator over entries in *descending* key order (top-k
  /// queries walk SCAPE trees from the largest scalar projection down).
  class ConstReverseIterator {
   public:
    ConstReverseIterator() = default;
    ConstReverseIterator(const LeafNode* leaf, std::size_t idx) : leaf_(leaf), idx_(idx) {}

    /// Key of the current entry.
    double key() const { return leaf_->keys[idx_]; }
    /// Value of the current entry.
    const V& value() const { return leaf_->values[idx_]; }

    ConstReverseIterator& operator++() {
      if (idx_ == 0) {
        leaf_ = leaf_->prev;
        // Skip (structurally impossible but cheap to guard) empty leaves.
        while (leaf_ != nullptr && leaf_->keys.empty()) leaf_ = leaf_->prev;
        idx_ = leaf_ == nullptr ? 0 : leaf_->keys.size() - 1;
      } else {
        --idx_;
      }
      return *this;
    }

    bool operator==(const ConstReverseIterator& o) const = default;
    /// True iff the iterator points at an entry.
    bool valid() const { return leaf_ != nullptr; }

   private:
    const LeafNode* leaf_ = nullptr;
    std::size_t idx_ = 0;
  };

  /// \param max_entries maximum entries per node before a split (fanout).
  explicit BPlusTree(std::size_t max_entries = 64) : max_entries_(max_entries) {
    AFFINITY_CHECK_GE(max_entries_, 4u);
    root_ = std::make_unique<LeafNode>();
  }

  BPlusTree(BPlusTree&&) noexcept = default;
  BPlusTree& operator=(BPlusTree&&) noexcept = default;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts an entry; duplicate keys are kept (insertion order among equal
  /// keys is preserved).
  void Insert(double key, V value) {
    SplitResult split = InsertRecursive(root_.get(), key, std::move(value));
    if (split.new_node) {
      auto new_root = std::make_unique<InternalNode>();
      new_root->keys.push_back(split.split_key);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split.new_node));
      root_ = std::move(new_root);
      ++height_;
    }
    ++size_;
  }

  /// Erases one entry with key `key` whose value satisfies `pred(value)`.
  /// Among duplicates the first match in key order is removed. Underflowing
  /// nodes borrow from a sibling or merge with one; an internal root with a
  /// single remaining child collapses. Returns true iff an entry was erased.
  template <typename Pred>
  bool Erase(double key, Pred&& pred) {
    return EraseExtract(key, pred, nullptr);
  }

  /// Erases one entry with key `key` (first among duplicates).
  bool Erase(double key) {
    return Erase(key, [](const V&) { return true; });
  }

  /// Moves one entry matching (`old_key`, `pred`) to `new_key`, preserving
  /// its payload — the erase + insert the SCAPE maintenance path applies
  /// when a scalar projection ξ changes. Among equal final keys the moved
  /// entry lands after existing ones (insertion-order stability, matching
  /// Insert). Returns false (and changes nothing) when no entry matched.
  template <typename Pred>
  bool ReKey(double old_key, double new_key, Pred&& pred) {
    return ReKey(old_key, new_key, std::forward<Pred>(pred), [](V&) {});
  }

  /// As ReKey, additionally applying `update(value&)` to the payload
  /// between the erase and the re-insert (the SCAPE maintenance path
  /// refreshes the cached normalizer riding in each entry).
  template <typename Pred, typename Update>
  bool ReKey(double old_key, double new_key, Pred&& pred, Update&& update) {
    V moved{};
    if (!EraseExtract(old_key, pred, &moved)) return false;
    update(moved);
    Insert(new_key, std::move(moved));
    return true;
  }

  /// Number of entries.
  std::size_t size() const { return size_; }

  /// True iff the tree has no entries.
  bool empty() const { return size_ == 0; }

  /// Tree height (1 for a lone leaf).
  std::size_t height() const { return height_; }

  /// Iterator at the smallest entry.
  ConstIterator begin() const {
    const Node* node = root_.get();
    while (!node->is_leaf) {
      node = static_cast<const InternalNode*>(node)->children.front().get();
    }
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (leaf->keys.empty()) return end();
    return ConstIterator(leaf, 0);
  }

  /// Past-the-end iterator.
  ConstIterator end() const { return ConstIterator(nullptr, 0); }

  /// Iterator at the largest entry (descending traversal).
  ConstReverseIterator rbegin() const {
    const Node* node = root_.get();
    while (!node->is_leaf) {
      node = static_cast<const InternalNode*>(node)->children.back().get();
    }
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (leaf->keys.empty()) return rend();
    return ConstReverseIterator(leaf, leaf->keys.size() - 1);
  }

  /// Past-the-end reverse iterator.
  ConstReverseIterator rend() const { return ConstReverseIterator(nullptr, 0); }

  /// First entry with key >= `key` (or end()).
  ConstIterator LowerBound(double key) const { return Bound(key, /*strict=*/false); }

  /// First entry with key > `key` (or end()).
  ConstIterator UpperBound(double key) const { return Bound(key, /*strict=*/true); }

  /// Applies `fn(key, value)` to every entry with lo < key < hi
  /// (strict bounds — what MER queries need).
  template <typename Fn>
  void ScanOpenRange(double lo, double hi, Fn&& fn) const {
    for (ConstIterator it = UpperBound(lo); it != end() && it.key() < hi; ++it) {
      fn(it.key(), it.value());
    }
  }

  /// Applies `fn(key, value)` to every entry with key > `lo`.
  template <typename Fn>
  void ScanGreaterThan(double lo, Fn&& fn) const {
    for (ConstIterator it = UpperBound(lo); it != end(); ++it) fn(it.key(), it.value());
  }

  /// Applies `fn(key, value)` to every entry with key < `hi`.
  template <typename Fn>
  void ScanLessThan(double hi, Fn&& fn) const {
    for (ConstIterator it = begin(); it != end() && it.key() < hi; ++it) {
      fn(it.key(), it.value());
    }
  }

  /// Validates structural invariants (sorted keys, uniform leaf depth,
  /// correct leaf chain, child/key counts, non-root occupancy floors).
  /// For tests; O(size).
  bool ValidateInvariants() const {
    std::size_t leaf_depth = 0;
    const Node* node = root_.get();
    while (!node->is_leaf) {
      ++leaf_depth;
      node = static_cast<const InternalNode*>(node)->children.front().get();
    }
    std::size_t counted = 0;
    const LeafNode* prev_leaf = nullptr;
    bool ok = ValidateNode(root_.get(), 0, leaf_depth, &counted, &prev_leaf);
    return ok && counted == size_;
  }

 private:
  struct SplitResult {
    double split_key = 0.0;
    std::unique_ptr<Node> new_node;  // null when no split happened
  };

  /// Minimum occupancy of non-root nodes. Splits produce nodes at or above
  /// these floors, and deletion rebalances back up to them.
  std::size_t MinLeafKeys() const { return max_entries_ / 2; }
  std::size_t MinInternalChildren() const { return (max_entries_ + 1) / 2; }

  /// Erase driver: removes the first (key, pred) match, moving its payload
  /// into `out` when non-null, then restores the root invariants.
  template <typename Pred>
  bool EraseExtract(double key, Pred& pred, V* out) {
    if (!EraseRecursive(root_.get(), key, pred, out)) return false;
    --size_;
    if (!root_->is_leaf) {
      auto* inner = static_cast<InternalNode*>(root_.get());
      if (inner->children.size() == 1) {
        root_ = std::move(inner->children.front());
        --height_;
      }
    }
    return true;
  }

  /// Recursive erase. The parent rebalances an underflowing child after the
  /// recursive call reports success; the root itself is exempt from
  /// occupancy floors (handled by EraseExtract's collapse).
  template <typename Pred>
  bool EraseRecursive(Node* node, double key, Pred& pred, V* out) {
    if (node->is_leaf) {
      auto* leaf = static_cast<LeafNode*>(node);
      const auto lo = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
      for (auto it = lo; it != leaf->keys.end() && *it == key; ++it) {
        const auto idx = static_cast<std::size_t>(it - leaf->keys.begin());
        if (!pred(leaf->values[idx])) continue;
        if (out != nullptr) *out = std::move(leaf->values[idx]);
        leaf->keys.erase(it);
        leaf->values.erase(leaf->values.begin() + static_cast<long>(idx));
        return true;
      }
      return false;
    }
    auto* inner = static_cast<InternalNode*>(node);
    // A split promotes the right half's first key, so a run of duplicates
    // can straddle a separator *equal* to the key (the left child may hold
    // entries equal to its right separator). Probe every candidate child in
    // key order until one erases.
    std::size_t i = 0;
    while (i < inner->keys.size() && key > inner->keys[i]) ++i;
    for (; i < inner->children.size(); ++i) {
      if (i > 0 && inner->keys[i - 1] > key) break;
      if (EraseRecursive(inner->children[i].get(), key, pred, out)) {
        RebalanceChild(inner, i);
        return true;
      }
    }
    return false;
  }

  /// Restores the occupancy floor of `parent->children[i]` after an erase
  /// below it: borrow from a richer sibling first (a key rotation through
  /// the separator), otherwise merge with one.
  void RebalanceChild(InternalNode* parent, std::size_t i) {
    Node* child = parent->children[i].get();
    if (child->is_leaf) {
      auto* leaf = static_cast<LeafNode*>(child);
      if (leaf->keys.size() >= MinLeafKeys()) return;
      if (i > 0) {
        auto* left = static_cast<LeafNode*>(parent->children[i - 1].get());
        if (left->keys.size() > MinLeafKeys()) {
          leaf->keys.insert(leaf->keys.begin(), left->keys.back());
          leaf->values.insert(leaf->values.begin(), std::move(left->values.back()));
          left->keys.pop_back();
          left->values.pop_back();
          parent->keys[i - 1] = leaf->keys.front();
          return;
        }
      }
      if (i + 1 < parent->children.size()) {
        auto* right = static_cast<LeafNode*>(parent->children[i + 1].get());
        if (right->keys.size() > MinLeafKeys()) {
          leaf->keys.push_back(right->keys.front());
          leaf->values.push_back(std::move(right->values.front()));
          right->keys.erase(right->keys.begin());
          right->values.erase(right->values.begin());
          parent->keys[i] = right->keys.front();
          return;
        }
      }
      MergeLeaves(parent, i > 0 ? i - 1 : i);
      return;
    }
    auto* node = static_cast<InternalNode*>(child);
    if (node->children.size() >= MinInternalChildren()) return;
    if (i > 0) {
      auto* left = static_cast<InternalNode*>(parent->children[i - 1].get());
      if (left->children.size() > MinInternalChildren()) {
        node->keys.insert(node->keys.begin(), parent->keys[i - 1]);
        node->children.insert(node->children.begin(), std::move(left->children.back()));
        parent->keys[i - 1] = left->keys.back();
        left->keys.pop_back();
        left->children.pop_back();
        return;
      }
    }
    if (i + 1 < parent->children.size()) {
      auto* right = static_cast<InternalNode*>(parent->children[i + 1].get());
      if (right->children.size() > MinInternalChildren()) {
        node->keys.push_back(parent->keys[i]);
        node->children.push_back(std::move(right->children.front()));
        parent->keys[i] = right->keys.front();
        right->keys.erase(right->keys.begin());
        right->children.erase(right->children.begin());
        return;
      }
    }
    MergeInternal(parent, i > 0 ? i - 1 : i);
  }

  /// Merges leaf `left_idx + 1` into leaf `left_idx` (combined size stays
  /// ≤ max: one side is underflowing, the other at the floor) and drops the
  /// separator. The leaf chain is re-linked across the removed node.
  void MergeLeaves(InternalNode* parent, std::size_t left_idx) {
    auto* left = static_cast<LeafNode*>(parent->children[left_idx].get());
    auto* right = static_cast<LeafNode*>(parent->children[left_idx + 1].get());
    left->keys.insert(left->keys.end(), right->keys.begin(), right->keys.end());
    for (auto& v : right->values) left->values.push_back(std::move(v));
    left->next = right->next;
    if (right->next != nullptr) right->next->prev = left;
    parent->keys.erase(parent->keys.begin() + static_cast<long>(left_idx));
    parent->children.erase(parent->children.begin() + static_cast<long>(left_idx) + 1);
  }

  /// Merges internal node `left_idx + 1` into `left_idx`, pulling the
  /// separator down between the two key runs.
  void MergeInternal(InternalNode* parent, std::size_t left_idx) {
    auto* left = static_cast<InternalNode*>(parent->children[left_idx].get());
    auto* right = static_cast<InternalNode*>(parent->children[left_idx + 1].get());
    left->keys.push_back(parent->keys[left_idx]);
    left->keys.insert(left->keys.end(), right->keys.begin(), right->keys.end());
    for (auto& c : right->children) left->children.push_back(std::move(c));
    parent->keys.erase(parent->keys.begin() + static_cast<long>(left_idx));
    parent->children.erase(parent->children.begin() + static_cast<long>(left_idx) + 1);
  }

  ConstIterator Bound(double key, bool strict) const {
    const Node* node = root_.get();
    while (!node->is_leaf) {
      const auto* inner = static_cast<const InternalNode*>(node);
      // Rightmost child whose range can contain the bound: for strict
      // bounds descend past equal separators.
      std::size_t i = 0;
      while (i < inner->keys.size() &&
             (strict ? key >= inner->keys[i] : key > inner->keys[i])) {
        ++i;
      }
      node = inner->children[i].get();
    }
    const auto* leaf = static_cast<const LeafNode*>(node);
    std::size_t idx = 0;
    while (idx < leaf->keys.size() &&
           (strict ? leaf->keys[idx] <= key : leaf->keys[idx] < key)) {
      ++idx;
    }
    // The bound may be in the next leaf when the whole leaf precedes it.
    while (leaf != nullptr && idx >= leaf->keys.size()) {
      leaf = leaf->next;
      idx = 0;
    }
    if (leaf == nullptr) return end();
    return ConstIterator(leaf, idx);
  }

  SplitResult InsertRecursive(Node* node, double key, V value) {
    if (node->is_leaf) {
      auto* leaf = static_cast<LeafNode*>(node);
      // upper_bound keeps equal-key insertion order stable.
      const auto pos = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), key);
      const auto idx = static_cast<std::size_t>(pos - leaf->keys.begin());
      leaf->keys.insert(pos, key);
      leaf->values.insert(leaf->values.begin() + static_cast<long>(idx), std::move(value));
      if (leaf->keys.size() <= max_entries_) return {};
      return SplitLeaf(leaf);
    }
    auto* inner = static_cast<InternalNode*>(node);
    std::size_t i = 0;
    while (i < inner->keys.size() && key >= inner->keys[i]) ++i;
    SplitResult child_split = InsertRecursive(inner->children[i].get(), key, std::move(value));
    if (!child_split.new_node) return {};
    inner->keys.insert(inner->keys.begin() + static_cast<long>(i), child_split.split_key);
    inner->children.insert(inner->children.begin() + static_cast<long>(i) + 1,
                           std::move(child_split.new_node));
    if (inner->children.size() <= max_entries_) return {};
    return SplitInternal(inner);
  }

  SplitResult SplitLeaf(LeafNode* leaf) {
    const std::size_t half = leaf->keys.size() / 2;
    auto right = std::make_unique<LeafNode>();
    right->keys.assign(leaf->keys.begin() + static_cast<long>(half), leaf->keys.end());
    right->values.assign(std::make_move_iterator(leaf->values.begin() + static_cast<long>(half)),
                         std::make_move_iterator(leaf->values.end()));
    leaf->keys.resize(half);
    leaf->values.resize(half);
    right->next = leaf->next;
    right->prev = leaf;
    if (right->next != nullptr) right->next->prev = right.get();
    leaf->next = right.get();
    SplitResult out;
    out.split_key = right->keys.front();
    out.new_node = std::move(right);
    return out;
  }

  SplitResult SplitInternal(InternalNode* inner) {
    // Promote the middle key; left keeps [0, mid), right gets (mid, end).
    const std::size_t mid = inner->keys.size() / 2;
    auto right = std::make_unique<InternalNode>();
    SplitResult out;
    out.split_key = inner->keys[mid];
    right->keys.assign(inner->keys.begin() + static_cast<long>(mid) + 1, inner->keys.end());
    right->children.assign(
        std::make_move_iterator(inner->children.begin() + static_cast<long>(mid) + 1),
        std::make_move_iterator(inner->children.end()));
    inner->keys.resize(mid);
    inner->children.resize(mid + 1);
    out.new_node = std::move(right);
    return out;
  }

  bool ValidateNode(const Node* node, std::size_t depth, std::size_t leaf_depth,
                    std::size_t* counted, const LeafNode** prev_leaf) const {
    if (node->is_leaf) {
      if (depth != leaf_depth) return false;
      const auto* leaf = static_cast<const LeafNode*>(node);
      if (leaf->keys.size() != leaf->values.size()) return false;
      if (depth != 0 && leaf->keys.size() < MinLeafKeys()) return false;
      for (std::size_t i = 1; i < leaf->keys.size(); ++i) {
        if (leaf->keys[i - 1] > leaf->keys[i]) return false;
      }
      if (*prev_leaf != nullptr) {
        if ((*prev_leaf)->next != leaf) return false;
        if (leaf->prev != *prev_leaf) return false;
        if (!(*prev_leaf)->keys.empty() && !leaf->keys.empty() &&
            (*prev_leaf)->keys.back() > leaf->keys.front()) {
          return false;
        }
      } else if (leaf->prev != nullptr) {
        return false;
      }
      *prev_leaf = leaf;
      *counted += leaf->keys.size();
      return true;
    }
    const auto* inner = static_cast<const InternalNode*>(node);
    if (inner->children.size() != inner->keys.size() + 1) return false;
    if (inner->children.size() > max_entries_ + 1) return false;
    if (inner->children.size() < (depth == 0 ? 2u : MinInternalChildren())) return false;
    for (std::size_t i = 1; i < inner->keys.size(); ++i) {
      if (inner->keys[i - 1] > inner->keys[i]) return false;
    }
    for (const auto& child : inner->children) {
      if (!ValidateNode(child.get(), depth + 1, leaf_depth, counted, prev_leaf)) return false;
    }
    return true;
  }

  std::size_t max_entries_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
  std::size_t height_ = 1;
};

}  // namespace affinity::btree

#endif  // AFFINITY_BTREE_BPLUS_TREE_H_
