// Streaming demo — windowed AFFINITY over a live feed.
//
// Rows arrive one at a time (here: a synthetic sensor feed replayed at
// ingest speed); the StreamingAffinity wrapper maintains the trailing
// analysis window and refreshes the stack (AFCLST → SYMEX+ → SCAPE) every
// `rebuild_interval` rows — incrementally (delta updates through every
// layer, DESIGN.md §8) with drift-monitored escalation back to full
// rebuilds when the regime shifts (the demo splices two different seeds
// so that actually happens). After each refresh the demo runs a top-k
// correlation query and prints how the leader board drifts as the window
// slides — the real-time deployment the paper's introduction motivates.
//
//   $ ./streaming_demo

#include <cstdio>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "core/streaming.h"
#include "ts/generators.h"

using affinity::core::Measure;
using affinity::core::QueryMethod;
using affinity::core::StreamingAffinity;
using affinity::core::StreamingOptions;

int main() {
  // The feed: 16 sensors, 600 ticks, with cluster structure that slowly
  // rotates (two different seeds spliced) so the leader board moves.
  affinity::ts::DatasetSpec spec;
  spec.num_series = 16;
  spec.num_samples = 300;
  spec.num_clusters = 3;
  spec.seed = 71;
  const affinity::ts::Dataset phase1 = affinity::ts::MakeSensorData(spec);
  spec.seed = 72;
  const affinity::ts::Dataset phase2 = affinity::ts::MakeSensorData(spec);

  StreamingOptions options;
  options.window = 120;
  options.rebuild_interval = 60;
  options.mode = affinity::core::UpdateMode::kIncremental;
  options.build.afclst.k = 3;
  options.build.build_dft = false;

  auto stream = StreamingAffinity::Create(phase1.matrix.names(), options);
  if (!stream.ok()) {
    std::fprintf(stderr, "create failed: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  std::vector<double> row(phase1.matrix.n());
  for (int phase = 0; phase < 2; ++phase) {
    const affinity::ts::DataMatrix& feed = (phase == 0 ? phase1 : phase2).matrix;
    for (std::size_t i = 0; i < feed.m(); ++i) {
      for (std::size_t j = 0; j < feed.n(); ++j) row[j] = feed.matrix()(i, j);
      const auto result = stream->Append(row);
      if (!result.ok()) {
        std::fprintf(stderr, "append failed: %s\n", result.status.ToString().c_str());
        return 1;
      }
      if (result.refreshed) {
        affinity::core::TopKRequest request{Measure::kCorrelation, 3, true};
        auto top = stream->framework()->engine().TopK(request, QueryMethod::kScape);
        if (!top.ok()) return 1;
        std::printf("t=%4zu  %s  top correlated pairs:", stream->rows_ingested(),
                    result.escalated ? "escalated rebuild"
                    : result.mode == affinity::core::UpdateMode::kIncremental
                        ? "incremental refresh"
                        : "full rebuild     ");
        for (const auto& entry : top->entries) {
          std::printf("  (%s,%s %.3f)", stream->framework()->data().name(entry.pair.u).c_str(),
                      stream->framework()->data().name(entry.pair.v).c_str(), entry.value);
        }
        std::printf("\n");
      }
    }
  }

  // Checkpoint the final model: a cold process can LoadModel() and answer
  // immediately (see core/serialize.h).
  const std::string checkpoint = "/tmp/affinity_stream_checkpoint.affm";
  if (const auto status =
          affinity::core::SaveModel(stream->framework()->model(), checkpoint);
      !status.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto restored = affinity::core::LoadModel(checkpoint);
  if (!restored.ok()) return 1;
  std::printf("\ncheckpointed model to %s and restored it: %zu relationships intact\n",
              checkpoint.c_str(), restored->relationship_count());
  const auto& profile = stream->maintenance();
  std::printf("ingested %zu rows, %zu full builds, %zu incremental refreshes "
              "(%zu escalations), final snapshot age %zu\n",
              stream->rows_ingested(), stream->rebuild_count(), stream->refresh_count(),
              profile.escalations, stream->snapshot_age());
  std::printf("maintenance: %zu rows absorbed, %zu delta updates, %zu exact refits, "
              "%zu index re-keys, residual %.4f (baseline %.4f), resident rows %zu\n",
              profile.rows_absorbed, profile.relationships_updated,
              profile.relationships_refit, profile.tree_rekeys,
              profile.mean_relative_residual, profile.baseline_mean_residual,
              stream->table().retained_row_count());
  return 0;
}
