// Streaming demo — windowed AFFINITY over a live feed.
//
// Rows arrive one at a time (here: a synthetic sensor feed replayed at
// ingest speed); the StreamingAffinity wrapper maintains the trailing
// analysis window and refreshes the stack (AFCLST → SYMEX+ → SCAPE) every
// `rebuild_interval` rows — incrementally (delta updates through every
// layer, DESIGN.md §8) with drift-monitored escalation back to full
// rebuilds when the regime shifts (the demo splices two different seeds
// so that actually happens). After each refresh the demo runs a top-k
// correlation query and prints how the leader board drifts as the window
// slides — the real-time deployment the paper's introduction motivates.
//
// With --shards=N the same feed runs through the sharded router
// (DESIGN.md §9): N independent model instances over disjoint series
// groups, scatter appends with concurrent per-shard maintenance on one
// pool, scatter-gather top-k with per-shard freshness, a
// freshness-bounded (blended) query between refreshes, and a
// shard-manifest checkpoint round-trip.
//
//   $ ./streaming_demo
//   $ ./streaming_demo --shards=4

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/serialize.h"
#include "core/streaming.h"
#include "shard/sharded.h"
#include "ts/generators.h"

using affinity::core::Measure;
using affinity::core::QueryMethod;
using affinity::core::StreamingAffinity;
using affinity::core::StreamingOptions;

namespace {

int RunSharded(std::size_t shards) {
  affinity::ts::DatasetSpec spec;
  spec.num_series = 16;
  spec.num_samples = 300;
  spec.num_clusters = 3;
  spec.seed = 71;
  const affinity::ts::Dataset phase1 = affinity::ts::MakeSensorData(spec);
  spec.seed = 72;
  const affinity::ts::Dataset phase2 = affinity::ts::MakeSensorData(spec);

  affinity::shard::ShardedOptions options;
  options.shards = shards;
  options.partition = affinity::shard::PartitionScheme::kHash;
  options.streaming.window = 120;
  options.streaming.rebuild_interval = 60;
  options.streaming.mode = affinity::core::UpdateMode::kIncremental;
  options.streaming.build.afclst.k = 2;
  options.streaming.build.build_dft = false;
  options.streaming.build.threads = 0;  // one worker per hardware thread

  auto service = affinity::shard::ShardedAffinity::Create(phase1.matrix.names(), options);
  if (!service.ok()) {
    std::fprintf(stderr, "create failed: %s\n", service.status().ToString().c_str());
    return 1;
  }
  std::printf("sharded streaming: %zu shards (hash partition), %zu cross-shard pairs\n",
              service->shard_count(), service->router().partitioner().cross_pair_count());

  std::vector<double> row(phase1.matrix.n());
  for (int phase = 0; phase < 2; ++phase) {
    const affinity::ts::DataMatrix& feed = (phase == 0 ? phase1 : phase2).matrix;
    for (std::size_t i = 0; i < feed.m(); ++i) {
      for (std::size_t j = 0; j < feed.n(); ++j) row[j] = feed.matrix()(i, j);
      const auto result = service->Append(row);
      if (!result.ok()) {
        std::fprintf(stderr, "append failed: %s\n", result.status.ToString().c_str());
        return 1;
      }
      if (result.refreshed) {
        affinity::core::TopKRequest request{Measure::kCorrelation, 3, true};
        auto top = service->TopK(request);
        if (!top.ok()) return 1;
        std::printf("t=%4zu  %s  top correlated pairs:", service->rows_ingested(),
                    result.escalated ? "escalated rebuild  " : "concurrent refreshes");
        for (const auto& entry : top->result.entries) {
          std::printf("  (%s,%s %.3f)", phase1.matrix.name(entry.pair.u).c_str(),
                      phase1.matrix.name(entry.pair.v).c_str(), entry.value);
        }
        std::printf("\n");
      }
    }
  }

  // Freshness SLA: between refreshes the snapshot ages; a bounded query
  // blends the live rolling marginals instead of serving stale scale.
  for (std::size_t j = 0; j < row.size(); ++j) row[j] *= 2.0;  // scale jump
  for (int i = 0; i < 5; ++i) {
    if (!service->Append(row).ok()) return 1;
  }
  affinity::core::MecRequest mec;
  mec.measure = Measure::kCovariance;
  mec.ids = {0, static_cast<affinity::ts::SeriesId>(row.size() - 1)};
  affinity::core::FreshnessOptions bounded;
  bounded.max_staleness = 2;
  auto stale = service->Mec(mec);
  auto fresh = service->Mec(mec, bounded);
  if (!stale.ok() || !fresh.ok()) return 1;
  std::printf("\nfreshness SLA (max_staleness=2, snapshot age %zu): snapshot cov=%.4f, "
              "blended cov=%.4f (plan: %s)\n",
              fresh->shards[0].snapshot_age, stale->response.pair_values(0, 1),
              fresh->response.pair_values(0, 1), fresh->response.plan.rationale.c_str());

  // Checkpoint the whole deployment in one manifest and restore it.
  const std::string checkpoint = "/tmp/affinity_shard_checkpoint.affs";
  if (const auto status = service->Save(checkpoint); !status.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto restored = affinity::shard::ShardedAffinity::Load(checkpoint);
  if (!restored.ok()) return 1;
  std::printf("checkpointed %zu shards to %s and restored them (ready=%s)\n",
              restored->shard_count(), checkpoint.c_str(),
              restored->ready() ? "true" : "false");

  const auto profile = service->maintenance();
  std::printf("ingested %zu rows; aggregated maintenance: %zu refreshes, %zu rows absorbed, "
              "%zu delta updates, %zu exact refits, %zu index re-keys, %zu escalations\n",
              service->rows_ingested(), profile.refreshes, profile.rows_absorbed,
              profile.relationships_updated, profile.relationships_refit, profile.tree_rekeys,
              profile.escalations);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      const long shards = std::atol(argv[i] + 9);
      if (shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 1;
      }
      return RunSharded(static_cast<std::size_t>(shards));
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--shards=N]\n", argv[0]);
      return 0;
    }
  }
  // The feed: 16 sensors, 600 ticks, with cluster structure that slowly
  // rotates (two different seeds spliced) so the leader board moves.
  affinity::ts::DatasetSpec spec;
  spec.num_series = 16;
  spec.num_samples = 300;
  spec.num_clusters = 3;
  spec.seed = 71;
  const affinity::ts::Dataset phase1 = affinity::ts::MakeSensorData(spec);
  spec.seed = 72;
  const affinity::ts::Dataset phase2 = affinity::ts::MakeSensorData(spec);

  StreamingOptions options;
  options.window = 120;
  options.rebuild_interval = 60;
  options.mode = affinity::core::UpdateMode::kIncremental;
  options.build.afclst.k = 3;
  options.build.build_dft = false;

  auto stream = StreamingAffinity::Create(phase1.matrix.names(), options);
  if (!stream.ok()) {
    std::fprintf(stderr, "create failed: %s\n", stream.status().ToString().c_str());
    return 1;
  }

  std::vector<double> row(phase1.matrix.n());
  for (int phase = 0; phase < 2; ++phase) {
    const affinity::ts::DataMatrix& feed = (phase == 0 ? phase1 : phase2).matrix;
    for (std::size_t i = 0; i < feed.m(); ++i) {
      for (std::size_t j = 0; j < feed.n(); ++j) row[j] = feed.matrix()(i, j);
      const auto result = stream->Append(row);
      if (!result.ok()) {
        std::fprintf(stderr, "append failed: %s\n", result.status.ToString().c_str());
        return 1;
      }
      if (result.refreshed) {
        affinity::core::TopKRequest request{Measure::kCorrelation, 3, true};
        auto top = stream->framework()->engine().TopK(request, QueryMethod::kScape);
        if (!top.ok()) return 1;
        std::printf("t=%4zu  %s  top correlated pairs:", stream->rows_ingested(),
                    result.escalated ? "escalated rebuild"
                    : result.mode == affinity::core::UpdateMode::kIncremental
                        ? "incremental refresh"
                        : "full rebuild     ");
        for (const auto& entry : top->entries) {
          std::printf("  (%s,%s %.3f)", stream->framework()->data().name(entry.pair.u).c_str(),
                      stream->framework()->data().name(entry.pair.v).c_str(), entry.value);
        }
        std::printf("\n");
      }
    }
  }

  // Checkpoint the final model: a cold process can LoadModel() and answer
  // immediately (see core/serialize.h).
  const std::string checkpoint = "/tmp/affinity_stream_checkpoint.affm";
  if (const auto status =
          affinity::core::SaveModel(stream->framework()->model(), checkpoint);
      !status.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", status.ToString().c_str());
    return 1;
  }
  auto restored = affinity::core::LoadModel(checkpoint);
  if (!restored.ok()) return 1;
  std::printf("\ncheckpointed model to %s and restored it: %zu relationships intact\n",
              checkpoint.c_str(), restored->relationship_count());
  const auto& profile = stream->maintenance();
  std::printf("ingested %zu rows, %zu full builds, %zu incremental refreshes "
              "(%zu escalations), final snapshot age %zu\n",
              stream->rows_ingested(), stream->rebuild_count(), stream->refresh_count(),
              profile.escalations, stream->snapshot_age());
  std::printf("maintenance: %zu rows absorbed, %zu delta updates, %zu exact refits, "
              "%zu index re-keys, residual %.4f (baseline %.4f), resident rows %zu\n",
              profile.rows_absorbed, profile.relationships_updated,
              profile.relationships_refit, profile.tree_rekeys,
              profile.mean_relative_residual, profile.baseline_mean_residual,
              stream->table().retained_row_count());
  return 0;
}
