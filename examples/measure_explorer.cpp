// Measure explorer — the "one framework, many measures" tour.
//
// The paper's central claim is measure-agnosticism: once the affine
// relationships exist, *every* supported statistical measure — including
// derived measures the evaluation section never benchmarks (cosine,
// Jaccard, Dice) — is answered from the same structures. This example:
//
//   1. inspects clustering quality through the LSFD metric (Definition 1),
//   2. prints every measure of a chosen pair under WN and WA side by side,
//   3. runs a threshold query per measure, showing which strategy serves it
//      (SCAPE where indexable, WA fallback for Jaccard/Dice).
//
//   $ ./measure_explorer

#include <cstdio>
#include <string>

#include "core/framework.h"
#include "core/lsfd.h"
#include "ts/generators.h"

using affinity::core::Affinity;
using affinity::core::Measure;
using affinity::core::QueryMethod;

int main() {
  affinity::ts::DatasetSpec spec;
  spec.num_series = 80;
  spec.num_samples = 300;
  spec.num_clusters = 6;
  spec.seed = 11;
  const affinity::ts::Dataset dataset = affinity::ts::MakeSensorData(spec);

  auto framework = Affinity::Build(dataset.matrix);
  if (!framework.ok()) return 1;
  const Affinity& fw = *framework;

  // --- 1. LSFD between sequence pairs and their pivot matrices ------------
  std::printf("LSFD (Definition 1) between Se and its pivot Op, first pairs:\n");
  const auto& clustering = fw.model().clustering();
  for (affinity::ts::SeriesId v = 1; v <= 5; ++v) {
    const affinity::ts::SequencePair e(0, v);
    const affinity::la::Matrix se = dataset.matrix.SequencePairMatrix(e);
    const affinity::la::Matrix op =
        affinity::core::PivotPairMatrix(dataset.matrix, clustering, e.u, e.v);
    auto d = affinity::core::Lsfd(op, se);
    if (!d.ok()) return 1;
    std::printf("  pair (0,%u): cluster(%u)=%d  LSFD=%.4f\n", e.v, e.v,
                clustering.Omega(e.v), *d);
  }

  // --- 2. Every measure of one pair, WN vs WA ------------------------------
  const affinity::ts::SequencePair pair(2, 47);
  std::printf("\nmeasures of pair (%u,%u): naive vs affine\n", pair.u, pair.v);
  std::printf("  %-12s %14s %14s %12s\n", "measure", "WN", "WA", "|diff|");
  for (Measure m : {Measure::kCovariance, Measure::kDotProduct, Measure::kCorrelation,
                    Measure::kCosine, Measure::kJaccard, Measure::kDice}) {
    const double wn = *affinity::core::NaivePairMeasure(
        m, dataset.matrix.ColumnData(pair.u), dataset.matrix.ColumnData(pair.v),
        dataset.matrix.m());
    const double wa = *fw.model().PairMeasure(m, pair);
    std::printf("  %-12s %14.6f %14.6f %12.2e\n",
                std::string(affinity::core::MeasureName(m)).c_str(), wn, wa,
                wn > wa ? wn - wa : wa - wn);
  }
  std::printf("  %-12s %14s %14s\n", "", "(per series u)", "");
  for (Measure m : {Measure::kMean, Measure::kMedian, Measure::kMode}) {
    const double wn = *affinity::core::NaiveLocationMeasure(
        m, dataset.matrix.ColumnData(pair.u), dataset.matrix.m());
    const double wa = *fw.model().SeriesMeasure(m, pair.u);
    std::printf("  %-12s %14.6f %14.6f %12.2e\n",
                std::string(affinity::core::MeasureName(m)).c_str(), wn, wa,
                wn > wa ? wn - wa : wa - wn);
  }

  // --- 3. A threshold query per measure, with the serving strategy ---------
  std::printf("\nMET (value > tau) across all measures:\n");
  const std::vector<std::pair<Measure, double>> thresholds = {
      {Measure::kMean, 10.0},      {Measure::kMedian, 10.0},    {Measure::kMode, 10.0},
      {Measure::kCovariance, 0.5}, {Measure::kDotProduct, 1e4}, {Measure::kCorrelation, 0.9},
      {Measure::kCosine, 0.999},   {Measure::kJaccard, 0.98},   {Measure::kDice, 0.99},
  };
  for (const auto& [measure, tau] : thresholds) {
    affinity::core::MetRequest request;
    request.measure = measure;
    request.tau = tau;
    // SCAPE where indexable; Jaccard/Dice fall back to WA compute+filter.
    auto result = fw.engine().Met(request, QueryMethod::kScape);
    const char* strategy = "SCAPE";
    if (!result.ok()) {
      result = fw.engine().Met(request, QueryMethod::kAffine);
      strategy = "WA";
    }
    if (!result.ok()) return 1;
    std::printf("  %-12s tau=%8.3g -> %6zu results  [%s]\n",
                std::string(affinity::core::MeasureName(measure)).c_str(), tau,
                result->pairs.size() + result->series.size(), strategy);
  }
  return 0;
}
