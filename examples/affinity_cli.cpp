// affinity_cli — a small command-line front end for the library.
//
//   affinity_cli generate <out.csv> [sensor|stock] [series] [samples]
//   affinity_cli inspect  <data.csv>
//   affinity_cli met      <data.csv> <measure> <tau>
//   affinity_cli mer      <data.csv> <measure> <lo> <hi>
//   affinity_cli topk     <data.csv> <measure> <k>
//
// `inspect` prints the model-quality report (core/quality.h) and the
// planner's strategy choices (core/planner.h); the query commands let the
// planner pick the strategy and report what it chose.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/framework.h"
#include "core/planner.h"
#include "core/quality.h"
#include "ts/csv.h"
#include "ts/generators.h"

using namespace affinity;
using core::Measure;
using core::QueryMethod;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  affinity_cli generate <out.csv> [sensor|stock] [series] [samples]\n"
               "  affinity_cli inspect  <data.csv>\n"
               "  affinity_cli met      <data.csv> <measure> <tau>\n"
               "  affinity_cli mer      <data.csv> <measure> <lo> <hi>\n"
               "  affinity_cli topk     <data.csv> <measure> <k>\n"
               "measures: mean median mode covariance dot-product correlation\n"
               "          cosine jaccard dice\n");
  return 2;
}

bool ParseMeasure(const std::string& name, Measure* out) {
  for (Measure m : core::AllMeasures()) {
    if (name == core::MeasureName(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

int Generate(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string out_path = argv[2];
  const std::string kind = argc > 3 ? argv[3] : "sensor";
  ts::DatasetSpec spec;
  spec.num_series = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 100;
  spec.num_samples = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 300;
  spec.num_clusters = 8;
  spec.seed = 42;
  const ts::Dataset ds = kind == "stock" ? ts::MakeStockData(spec) : ts::MakeSensorData(spec);
  const Status status = ts::WriteCsv(ds.matrix, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu series x %zu samples (%s)\n", out_path.c_str(), ds.matrix.n(),
              ds.matrix.m(), ds.name.c_str());
  return 0;
}

StatusOr<core::Affinity> LoadAndBuild(const char* path) {
  AFFINITY_ASSIGN_OR_RETURN(ts::DataMatrix data, ts::ReadCsv(path));
  std::printf("loaded %s: n=%zu series, m=%zu samples\n", path, data.n(), data.m());
  return core::Affinity::Build(data);
}

int Inspect(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto fw = LoadAndBuild(argv[2]);
  if (!fw.ok()) {
    std::fprintf(stderr, "error: %s\n", fw.status().ToString().c_str());
    return 1;
  }

  std::printf("\nbuild profile: total %.3fs (afclst %.3f, symex %.3f, preprocess %.3f, "
              "scape %.3f, dft %.3f)\n",
              fw->profile().total_seconds, fw->profile().afclst_seconds,
              fw->profile().symex_seconds, fw->profile().preprocess_seconds,
              fw->profile().scape_seconds, fw->profile().dft_seconds);

  auto quality = core::EvaluateModelQuality(fw->model());
  if (!quality.ok()) {
    std::fprintf(stderr, "error: %s\n", quality.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmodel quality (over %zu sampled pairs):\n", quality->sampled_pairs);
  std::printf("  relationships        : %zu (pivots: %zu)\n", quality->relationships,
              quality->pivots);
  std::printf("  relative fit residual: mean %.4f, p95 %.4f, max %.4f\n",
              quality->mean_relative_residual, quality->p95_relative_residual,
              quality->max_relative_residual);
  std::printf("  relative LSFD        : mean %.4f\n", quality->mean_relative_lsfd);
  std::printf("  projection error     : mean %.4f\n", quality->mean_relative_projection_error);
  std::printf("  cluster sizes        :");
  for (std::size_t size : quality->cluster_sizes) std::printf(" %zu", size);
  std::printf("\n");

  const core::QueryPlanner planner(
      fw->data().n(), fw->data().m(),
      {.has_model = true, .has_scape = fw->scape() != nullptr, .has_dft = fw->wf() != nullptr});
  std::printf("\nplanner choices (MET, 10%% selectivity):\n");
  for (Measure m : core::AllMeasures()) {
    const core::PlanChoice choice = planner.PlanMet(m, 0.1);
    std::printf("  %-12s -> %-5s (cost %.3g)  %s\n",
                std::string(core::MeasureName(m)).c_str(),
                std::string(core::QueryMethodName(choice.method)).c_str(),
                choice.estimated_cost, choice.rationale.c_str());
  }
  return 0;
}

void PrintSelection(const ts::DataMatrix& data, const core::SelectionResult& result,
                    std::size_t limit = 10) {
  std::printf("%zu results\n", result.pairs.size() + result.series.size());
  std::size_t shown = 0;
  for (const auto& e : result.pairs) {
    if (shown++ >= limit) break;
    std::printf("  (%s, %s)\n", data.name(e.u).c_str(), data.name(e.v).c_str());
  }
  for (const auto& v : result.series) {
    if (shown++ >= limit) break;
    std::printf("  %s\n", data.name(v).c_str());
  }
  if (result.pairs.size() + result.series.size() > limit) std::printf("  ...\n");
}

int Met(int argc, char** argv) {
  if (argc < 5) return Usage();
  Measure measure;
  if (!ParseMeasure(argv[3], &measure)) return Usage();
  auto fw = LoadAndBuild(argv[2]);
  if (!fw.ok()) {
    std::fprintf(stderr, "error: %s\n", fw.status().ToString().c_str());
    return 1;
  }
  // kAuto: the engine consults the planner over what is actually built
  // and reports the executed plan with the result.
  core::MetRequest request{measure, std::atof(argv[4]), true};
  auto result = fw->engine().Met(request);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("strategy: %s (%s)\n",
              std::string(core::QueryMethodName(result->plan.method)).c_str(),
              result->plan.rationale.c_str());
  PrintSelection(fw->data(), *result);
  return 0;
}

int Mer(int argc, char** argv) {
  if (argc < 6) return Usage();
  Measure measure;
  if (!ParseMeasure(argv[3], &measure)) return Usage();
  auto fw = LoadAndBuild(argv[2]);
  if (!fw.ok()) {
    std::fprintf(stderr, "error: %s\n", fw.status().ToString().c_str());
    return 1;
  }
  core::MerRequest request{measure, std::atof(argv[4]), std::atof(argv[5])};
  auto result = fw->engine().Mer(request);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("strategy: %s (%s)\n",
              std::string(core::QueryMethodName(result->plan.method)).c_str(),
              result->plan.rationale.c_str());
  PrintSelection(fw->data(), *result);
  return 0;
}

int TopK(int argc, char** argv) {
  if (argc < 5) return Usage();
  Measure measure;
  if (!ParseMeasure(argv[3], &measure)) return Usage();
  auto fw = LoadAndBuild(argv[2]);
  if (!fw.ok()) {
    std::fprintf(stderr, "error: %s\n", fw.status().ToString().c_str());
    return 1;
  }
  const std::size_t k = std::strtoull(argv[4], nullptr, 10);
  core::TopKRequest request{measure, k, true};
  auto result = fw->engine().TopK(request);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("strategy: %s — examined %zu entries for top-%zu\n",
              std::string(core::QueryMethodName(result->plan.method)).c_str(), result->examined,
              k);
  for (const auto& entry : result->entries) {
    if (core::IsLocation(measure)) {
      std::printf("  %-20s %.6f\n", fw->data().name(entry.series).c_str(), entry.value);
    } else {
      std::printf("  %-14s ~ %-14s %.6f\n", fw->data().name(entry.pair.u).c_str(),
                  fw->data().name(entry.pair.v).c_str(), entry.value);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return Generate(argc, argv);
  if (command == "inspect") return Inspect(argc, argv);
  if (command == "met") return Met(argc, argv);
  if (command == "mer") return Mer(argc, argv);
  if (command == "topk") return TopK(argc, argv);
  return Usage();
}
