// Sensor monitoring dashboard — the paper's online environment (§6.2).
//
// A campus deployment streams readings into the storage layer's
// data_matrix table; analysts fire MEC queries whose popularity follows a
// power law (some sensors are watched much more than others). The example
// ingests a snapshot through storage::DataMatrixTable, builds AFFINITY,
// replays an online workload under WN and WA, and prints the throughput
// gap — a miniature of Fig. 12.
//
//   $ ./sensor_monitor [num_queries]

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/framework.h"
#include "storage/table.h"
#include "ts/generators.h"

using affinity::Stopwatch;
using affinity::Xoshiro256;
using affinity::ZipfSampler;
using affinity::core::Affinity;
using affinity::core::Measure;
using affinity::core::QueryMethod;

int main(int argc, char** argv) {
  const std::size_t num_queries = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;

  // Ingest: sensors stream aligned rows into the storage table (Fig. 2's
  // data_matrix), which we snapshot into the analysis-ready matrix.
  affinity::ts::DatasetSpec spec;
  spec.num_series = 134;
  spec.num_samples = 720;  // one day at 2-minute sampling
  spec.num_clusters = 8;
  spec.seed = 99;
  const affinity::ts::Dataset day = affinity::ts::MakeSensorData(spec);

  auto table = affinity::storage::DataMatrixTable::FromDataMatrix(day.matrix, "sensor", 120.0);
  if (!table.ok()) return 1;
  std::printf("ingested %zu sensors x %zu samples into the data_matrix table\n",
              table->series_count(), table->row_count());
  auto snapshot = table->Snapshot();
  if (!snapshot.ok()) return 1;

  affinity::core::AffinityOptions build_options;
  build_options.build_scape = false;
  build_options.build_dft = false;
  auto framework = Affinity::Build(*snapshot, build_options);
  if (!framework.ok()) return 1;
  const Affinity& fw = *framework;
  std::printf("model built in %.2f s (%zu relationships)\n\n", fw.profile().total_seconds,
              fw.model().relationship_count());

  // The online workload: uniform measure, 10 Zipf-popular sensors per query.
  const std::vector<Measure> menu = {Measure::kMean,       Measure::kMedian,
                                     Measure::kMode,       Measure::kCovariance,
                                     Measure::kDotProduct, Measure::kCorrelation};
  Xoshiro256 rng(5);
  ZipfSampler zipf(snapshot->n(), 1.0);
  std::vector<affinity::core::MecRequest> workload(num_queries);
  for (auto& request : workload) {
    request.measure = menu[rng.NextBounded(menu.size())];
    for (std::size_t r : zipf.SampleDistinct(&rng, 10)) {
      request.ids.push_back(static_cast<affinity::ts::SeriesId>(r));
    }
  }

  for (QueryMethod method : {QueryMethod::kNaive, QueryMethod::kAffine}) {
    Stopwatch watch;
    for (const auto& request : workload) {
      auto resp = fw.engine().Mec(request, method);
      if (!resp.ok()) {
        std::fprintf(stderr, "query failed: %s\n", resp.status().ToString().c_str());
        return 1;
      }
    }
    const double seconds = watch.ElapsedSeconds();
    std::printf("%-2s: %zu queries in %7.3f s  (%8.0f queries/s)\n",
                std::string(affinity::core::QueryMethodName(method)).c_str(), num_queries,
                seconds, static_cast<double>(num_queries) / seconds);
  }

  // A sample dashboard tile: current covariance matrix of the 4 most
  // watched sensors.
  affinity::core::MecRequest tile;
  tile.measure = Measure::kCovariance;
  tile.ids = {0, 1, 2, 3};
  auto cov = fw.engine().Mec(tile, QueryMethod::kAffine);
  if (!cov.ok()) return 1;
  std::printf("\ncovariance of the four most-watched sensors (WA):\n");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("  ");
    for (std::size_t j = 0; j < 4; ++j) std::printf("%+9.4f ", cov->pair_values(i, j));
    std::printf("\n");
  }
  return 0;
}
