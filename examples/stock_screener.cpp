// Stock screener — the paper's motivating Problem 1.
//
// "Given the intra-day stock quotes of n stocks obtained at a sampling
//  interval Δt, return the correlation coefficients of the n(n−1)/2 pairs
//  of stocks" — plus the trader's follow-up: all pairs above a threshold τ.
//
// The example generates one synthetic trading week of intra-day quotes,
// answers Problem 1 with WN and WA (comparing cost and agreement), then
// screens for highly correlated pairs with each strategy (WN, WA, WF,
// SCAPE), reporting times — a miniature of the paper's Fig. 15(a).
//
//   $ ./stock_screener [tau]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "core/framework.h"
#include "ts/generators.h"
#include "ts/stats.h"

using affinity::Stopwatch;
using affinity::core::Affinity;
using affinity::core::Measure;
using affinity::core::QueryMethod;

int main(int argc, char** argv) {
  const double tau = argc > 1 ? std::atof(argv[1]) : 0.90;

  // One synthetic week: 250 tickers, 5 trading days × 390 minutes.
  affinity::ts::DatasetSpec spec;
  spec.num_series = 250;
  spec.num_samples = 5 * 390;
  spec.num_clusters = 12;  // sectors
  spec.seed = 20260609;
  const affinity::ts::Dataset market = affinity::ts::MakeStockData(spec);
  std::printf("universe: %zu tickers x %zu minute bars (%zu pairs)\n", market.matrix.n(),
              market.matrix.m(), affinity::ts::SequencePairCount(market.matrix.n()));

  auto framework = Affinity::Build(market.matrix);
  if (!framework.ok()) {
    std::fprintf(stderr, "build failed: %s\n", framework.status().ToString().c_str());
    return 1;
  }
  const Affinity& fw = *framework;
  std::printf("AFFINITY built in %.2f s (AFCLST %.2f, SYMEX+ %.2f, SCAPE %.2f)\n\n",
              fw.profile().total_seconds, fw.profile().afclst_seconds,
              fw.profile().symex_seconds, fw.profile().scape_seconds);

  // --- Problem 1: the full correlation matrix, WN vs WA -------------------
  std::vector<affinity::ts::SeriesId> everyone(market.matrix.n());
  for (std::size_t j = 0; j < everyone.size(); ++j) {
    everyone[j] = static_cast<affinity::ts::SeriesId>(j);
  }
  affinity::core::MecRequest all_pairs;
  all_pairs.measure = Measure::kCorrelation;
  all_pairs.ids = everyone;

  Stopwatch watch;
  auto wn = fw.engine().Mec(all_pairs, QueryMethod::kNaive);
  const double wn_seconds = watch.ElapsedSeconds();
  watch.Restart();
  auto wa = fw.engine().Mec(all_pairs, QueryMethod::kAffine);
  const double wa_seconds = watch.ElapsedSeconds();
  if (!wn.ok() || !wa.ok()) return 1;
  std::printf("Problem 1 (all-pairs correlation): WN %.3f s, WA %.3f s (%.1fx), max |diff| %.2e\n\n",
              wn_seconds, wa_seconds, wn_seconds / wa_seconds,
              wn->pair_values.MaxAbsDiff(wa->pair_values));

  // --- The screener: pairs with correlation > tau --------------------------
  affinity::core::MetRequest screen;
  screen.measure = Measure::kCorrelation;
  screen.tau = tau;
  std::printf("screening for correlation > %.2f:\n", tau);
  for (QueryMethod method :
       {QueryMethod::kNaive, QueryMethod::kAffine, QueryMethod::kDft, QueryMethod::kScape}) {
    watch.Restart();
    auto result = fw.engine().Met(screen, method);
    const double seconds = watch.ElapsedSeconds();
    if (!result.ok()) return 1;
    std::printf("  %-5s: %6zu pairs in %8.4f s\n",
                std::string(affinity::core::QueryMethodName(method)).c_str(),
                result->pairs.size(), seconds);
  }

  // --- Show the top pairs (by WA value) ------------------------------------
  auto scape = fw.engine().Met(screen, QueryMethod::kScape);
  if (!scape.ok()) return 1;
  std::vector<std::pair<double, affinity::ts::SequencePair>> ranked;
  for (const auto& e : scape->pairs) {
    ranked.emplace_back(*fw.model().PairMeasure(Measure::kCorrelation, e), e);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::printf("\ntop correlated pairs:\n");
  for (std::size_t i = 0; i < ranked.size() && i < 8; ++i) {
    const auto& [rho, e] = ranked[i];
    std::printf("  %-12s ~ %-12s  rho = %.4f\n", market.matrix.name(e.u).c_str(),
                market.matrix.name(e.v).c_str(), rho);
  }
  return 0;
}
