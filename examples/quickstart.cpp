// Quickstart: build the AFFINITY framework over a small synthetic dataset
// and answer each of the three query types with each applicable strategy.
//
//   $ ./quickstart
//
// This mirrors the paper's introductory example (Fig. 1 / Problem 1): three
// co-moving instrument series whose pairwise correlation we want cheaply.

#include <cstdio>
#include <string>

#include "core/framework.h"
#include "ts/generators.h"

using affinity::core::Affinity;
using affinity::core::Measure;
using affinity::core::QueryMethod;

int main() {
  // 1. Data: 60 series × 240 samples with latent cluster structure
  //    (swap in your own data via ts::DataMatrix / ts::ReadCsv /
  //    storage::DataMatrixTable).
  affinity::ts::DatasetSpec spec;
  spec.num_series = 60;
  spec.num_samples = 240;
  spec.num_clusters = 5;
  spec.seed = 2026;
  const affinity::ts::Dataset dataset = affinity::ts::MakeSensorData(spec);

  // 2. One call builds everything: AFCLST clustering, SYMEX+ affine
  //    relationships, pivot measures, the SCAPE index, and WF sketches.
  auto framework = Affinity::Build(dataset.matrix);
  if (!framework.ok()) {
    std::fprintf(stderr, "build failed: %s\n", framework.status().ToString().c_str());
    return 1;
  }
  const Affinity& fw = *framework;
  std::printf("built: %zu affine relationships over %zu pivots in %.3f s\n",
              fw.model().relationship_count(), fw.model().pivot_count(),
              fw.profile().total_seconds);

  // 3. MEC query (Query 1): the correlation matrix of three series, via the
  //    affine relationships — no raw samples are touched.
  affinity::core::MecRequest mec;
  mec.measure = Measure::kCorrelation;
  mec.ids = {0, 1, 2};
  auto rho = fw.engine().Mec(mec, QueryMethod::kAffine);
  if (!rho.ok()) return 1;
  std::printf("\ncorrelation (WA) of series 0,1,2:\n");
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("  ");
    for (std::size_t j = 0; j < 3; ++j) std::printf("%+.4f ", rho->pair_values(i, j));
    std::printf("\n");
  }

  // 4. MET query (Query 2): all pairs correlated above 0.95, via the SCAPE
  //    index — a B-tree range scan per pivot, no per-pair computation.
  affinity::core::MetRequest met;
  met.measure = Measure::kCorrelation;
  met.tau = 0.95;
  auto hot = fw.engine().Met(met, QueryMethod::kScape);
  if (!hot.ok()) return 1;
  std::printf("\n%zu pairs with correlation > %.2f (SCAPE); first few:\n", hot->pairs.size(),
              met.tau);
  for (std::size_t i = 0; i < hot->pairs.size() && i < 5; ++i) {
    const auto& e = hot->pairs[i];
    std::printf("  (%s, %s)\n", dataset.matrix.name(e.u).c_str(),
                dataset.matrix.name(e.v).c_str());
  }
  std::printf("  pruning: %zu accepted without verification, %zu verified\n",
              hot->prune.accepted_unverified, hot->prune.verified);

  // 5. MER query (Query 3): pairs with covariance in a band.
  affinity::core::MerRequest mer;
  mer.measure = Measure::kCovariance;
  mer.lo = -0.05;
  mer.hi = 0.05;
  auto mild = fw.engine().Mer(mer, QueryMethod::kScape);
  if (!mild.ok()) return 1;
  std::printf("\n%zu pairs with covariance in (%.2f, %.2f) (SCAPE)\n", mild->pairs.size(),
              mer.lo, mer.hi);

  std::printf("\nquickstart OK\n");
  return 0;
}
